//! `trace_replay_throughput`: replay vs functional re-execution, and the
//! block-compiled recording path vs the interpreter.
//!
//! Quantifies the trace layer's premise — replaying a recorded dynamic
//! instruction stream is much faster than re-interpreting the program —
//! plus the block engine's recording throughput (`Trace::record` runs on
//! compiled blocks by default), and writes the measured speedups to
//! `BENCH_trace.json` at the workspace root so the perf trajectory is
//! tracked across PRs. The record asserts the block engine's ≥5×
//! recording-throughput floor over the interpreter baseline.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use mim_core::MachineConfig;
use mim_pipeline::PipelineSim;
use mim_trace::{LiveVm, Sampling, Trace, TraceSource};
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

fn drain<S: TraceSource>(mut source: S) -> u64 {
    let mut events = 0u64;
    source
        .drive(&mut |ev| {
            events += 1;
            black_box(ev.pc);
        })
        .expect("stream");
    events
}

fn bench_trace_replay(c: &mut Criterion) {
    let program = mibench::sha().program(WorkloadSize::Small);
    let trace = Trace::record(&program, None).expect("record");
    let n = trace.len();

    let mut group = c.benchmark_group("trace_replay_throughput");
    group.throughput(Throughput::Elements(n));
    group.bench_function("execute", |b| {
        b.iter(|| black_box(drain(LiveVm::interpreted(&program))))
    });
    group.bench_function("execute_block", |b| {
        b.iter(|| black_box(drain(LiveVm::new(&program))))
    });
    group.bench_function("record_block", |b| {
        b.iter(|| black_box(Trace::record(&program, None).expect("record").len()))
    });
    group.bench_function("replay", |b| {
        b.iter(|| black_box(drain(trace.replay(&program).expect("replay"))))
    });
    group.bench_function("replay_sampled_1_in_10", |b| {
        b.iter(|| {
            black_box(drain(
                trace
                    .sampled_replay(&program, Sampling::new(1000, 100))
                    .expect("replay"),
            ))
        })
    });
    group.finish();

    // A sweep consumer's view: cycle-accurate simulation fed by replay vs
    // by live execution (the timing model dominates, so the gap narrows —
    // this is the end-to-end win per design point).
    let sim = PipelineSim::new(&MachineConfig::default_config());
    let mut group = c.benchmark_group("sim_from");
    group.throughput(Throughput::Elements(n));
    group.bench_function("live_vm", |b| {
        b.iter(|| black_box(sim.simulate(&program).expect("sim")))
    });
    group.bench_function("replay", |b| {
        b.iter(|| {
            let mut replay = trace.replay(&program).expect("replay");
            black_box(sim.simulate_source(&mut replay).expect("sim"))
        })
    });
    group.finish();

    write_bench_record(&program, &trace);
}

#[derive(Serialize)]
struct BenchRecord {
    bench: &'static str,
    workload: String,
    instructions: u64,
    execute_minsts_per_sec: f64,
    block_minsts_per_sec: f64,
    block_speedup: f64,
    replay_minsts_per_sec: f64,
    replay_speedup: f64,
    in_memory_bytes: usize,
    serialized_bytes: usize,
    serialized_bytes_per_kilo_inst: f64,
}

/// The block engine's contract: recording throughput at least this many
/// times the interpreter baseline (asserted on every bench run).
const BLOCK_SPEEDUP_FLOOR: f64 = 5.0;

/// Steady-state measurement (separate from the criterion reporting above)
/// persisted as `BENCH_trace.json` for the repo's perf trajectory.
fn write_bench_record(program: &mim_isa::Program, trace: &Trace) {
    let rate = |f: &mut dyn FnMut() -> u64| {
        let mut best = f64::MIN;
        for _ in 0..5 {
            let t = Instant::now();
            let events = f();
            best = best.max(events as f64 / t.elapsed().as_secs_f64());
        }
        best / 1e6
    };
    // The baseline is the per-step interpreter — the only recording path
    // before the block engine existed, pinned via `LiveVm::interpreted`
    // so its meaning never drifts with the engine default.
    let execute = rate(&mut || drain(LiveVm::interpreted(program)));
    // The block path is measured as a full `Trace::record` (compile +
    // dispatch + both recorded streams), i.e. end-to-end recording
    // throughput, not a bare dispatch number.
    let block = rate(&mut || Trace::record(program, None).expect("record").len());
    let replay = rate(&mut || drain(trace.replay(program).expect("replay")));
    let serialized = trace.to_bytes().len();
    let record = BenchRecord {
        bench: "trace_replay_throughput",
        workload: trace.name().to_string(),
        instructions: trace.len(),
        execute_minsts_per_sec: execute,
        block_minsts_per_sec: block,
        block_speedup: block / execute,
        replay_minsts_per_sec: replay,
        replay_speedup: replay / execute,
        in_memory_bytes: trace.encoded_bytes(),
        serialized_bytes: serialized,
        serialized_bytes_per_kilo_inst: serialized as f64 / (trace.len() as f64 / 1e3),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_trace.json");
    let json = serde_json::to_string_pretty(&record).expect("serialize");
    std::fs::write(path, json).expect("write BENCH_trace.json");
    println!(
        "trace replay: {replay:.1} Minsts/s, block record {block:.1} Minsts/s \
         vs execute {execute:.1} Minsts/s (replay {:.1}x, block {:.1}x) \
         -> BENCH_trace.json",
        record.replay_speedup, record.block_speedup
    );
    assert!(
        record.block_speedup >= BLOCK_SPEEDUP_FLOOR,
        "block-compiled recording regressed below its {BLOCK_SPEEDUP_FLOOR}x floor: \
         {block:.1} vs {execute:.1} Minsts/s ({:.2}x)",
        record.block_speedup
    );
}

criterion_group!(benches, bench_trace_replay);
criterion_main!(benches);
