//! `serve_throughput`: the evaluation service under concurrent load.
//!
//! Boots a real `mim-serve` server (TCP, in-process) and drives hundreds
//! of concurrent overlapping sweep submissions at it from parallel client
//! threads, then asserts the three properties the service exists for:
//!
//! * **cell reuse** — overlapping sweeps coalesce onto one computation per
//!   (workload, machine, evaluator) cell: ≥ 80% cell-level cache hits;
//! * **determinism** — the same job yields byte-identical report payloads
//!   across runs and across worker counts (1 vs 4);
//! * **warm restarts** — a fresh engine over the same persistent store
//!   performs zero functional executions for previously-seen cells;
//! * **cheap telemetry** — the same storm with latency timestamping
//!   globally off (`mim_obs::set_timing(false)`) produces byte-identical
//!   reports, and turning instrumentation on costs ≤ 5% throughput.
//!
//! The measured numbers — including p50/p99 job latency scraped from the
//! engine's `mim-obs` registry — land in `BENCH_serve.json` at the
//! workspace root so the perf trajectory is tracked across PRs.

use std::collections::BTreeMap;
use std::hint::black_box;
use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mim_serve::{CellMemo, Client, Engine, JobSpec, Server, WorkloadStore};
use serde::{Serialize, Value};

/// Client threads driving the server concurrently.
const CLIENTS: usize = 8;
/// Submissions per client thread (8 × 48 = 384 total requests).
const REQUESTS_PER_CLIENT: usize = 48;

/// The pool of distinct-but-overlapping sweep jobs. Four width subsets
/// over the same two workloads share most of their cells; three title
/// variants per subset defeat job-level dedup so the cell memo (not the
/// job table) has to do the work.
fn job_pool() -> Vec<JobSpec> {
    let mut pool = Vec::new();
    for (tag, widths) in [
        ("narrow", "[1,2]"),
        ("wide", "[2,4]"),
        ("ends", "[1,4]"),
        ("full", "[1,2,4]"),
    ] {
        for variant in 0..3 {
            let json = format!(
                r#"{{"kind":"experiment","title":"{tag}-{variant}","workloads":["sha","qsort"],"size":"tiny","limit":20000,"evaluators":["model"],"space":{{"preset":"table2","widths":{widths}}}}}"#
            );
            let value: Value = serde_json::from_str(&json).expect("job JSON parses");
            pool.push(JobSpec::from_value(&value).expect("job spec is valid"));
        }
    }
    pool
}

/// Returns whichever of two load runs finished sooner (the second one is
/// produced lazily so both runs happen back to back).
fn faster_of(first: LoadRun, second: impl FnOnce() -> LoadRun) -> LoadRun {
    let second = second();
    if first.seconds <= second.seconds {
        first
    } else {
        second
    }
}

/// Reads one numeric counter out of a stats sub-object.
fn stat(stats: &Value, section: &str, key: &str) -> u64 {
    match stats.get(section).and_then(|s| s.get(key)) {
        Some(Value::UInt(u)) => *u,
        Some(Value::Int(i)) => *i as u64,
        other => panic!("stats {section}.{key} missing or non-numeric: {other:?}"),
    }
}

/// One full load run: boot a server, fire the request storm, collect the
/// per-title report bytes and the engine counters, shut down cleanly.
struct LoadRun {
    reports: BTreeMap<String, String>,
    seconds: f64,
    requests: u64,
    deduped: u64,
    cell_hits: u64,
    cell_misses: u64,
    executions: u64,
    /// Median and tail job run latency from the engine's metrics
    /// registry, in nanoseconds (zero when timing is globally off).
    run_p50_ns: f64,
    run_p99_ns: f64,
    total_p50_ns: f64,
    total_p99_ns: f64,
}

impl LoadRun {
    fn requests_per_second(&self) -> f64 {
        self.requests as f64 / self.seconds.max(1e-9)
    }
}

fn run_load(store: WorkloadStore, workers: usize, profile_capture: bool) -> LoadRun {
    let engine = Engine::start(store, CellMemo::new(), workers, 1024);
    engine.set_profile_capture(profile_capture);
    let server = Server::bind("tcp:127.0.0.1:0", engine.clone()).expect("bind");
    let addr = server.addr().to_connect_string();
    let handle = std::thread::spawn(move || server.run());

    let pool = Arc::new(job_pool());
    let started = Instant::now();
    let drivers: Vec<_> = (0..CLIENTS)
        .map(|c| {
            let pool = Arc::clone(&pool);
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&addr).expect("client connects");
                let mut reports: BTreeMap<String, String> = BTreeMap::new();
                let mut deduped = 0u64;
                for r in 0..REQUESTS_PER_CLIENT {
                    let job = &pool[(c + r) % pool.len()];
                    let submitted = client.submit(job).expect("submit accepted");
                    deduped += u64::from(submitted.deduped);
                    let text = client.result_text(submitted.id).expect("result");
                    reports.insert(format!("job-{}", (c + r) % pool.len()), text);
                }
                (reports, deduped)
            })
        })
        .collect();

    let mut reports: BTreeMap<String, String> = BTreeMap::new();
    let mut deduped = 0u64;
    for driver in drivers {
        let (mine, mine_deduped) = driver.join().expect("client thread");
        for (title, text) in mine {
            if let Some(previous) = reports.get(&title) {
                assert_eq!(previous, &text, "{title}: divergent bytes within one run");
            }
            reports.insert(title, text);
        }
        deduped += mine_deduped;
    }
    let seconds = started.elapsed().as_secs_f64();

    let stats = engine.stats();
    let metrics = engine.metrics();
    let quantile = |name: &str, q: f64| {
        metrics
            .histogram(name)
            .map_or(0.0, |h| if h.count == 0 { 0.0 } else { h.quantile(q) })
    };
    let run = LoadRun {
        reports,
        seconds,
        requests: (CLIENTS * REQUESTS_PER_CLIENT) as u64,
        deduped,
        cell_hits: stat(&stats, "cells", "hits"),
        cell_misses: stat(&stats, "cells", "misses"),
        executions: stat(&stats, "store", "functional_executions"),
        run_p50_ns: quantile("jobs.run_ns", 0.5),
        run_p99_ns: quantile("jobs.run_ns", 0.99),
        total_p50_ns: quantile("jobs.total_ns", 0.5),
        total_p99_ns: quantile("jobs.total_ns", 0.99),
    };

    let mut closer = Client::connect(&addr).expect("closer connects");
    closer.shutdown().expect("shutdown accepted");
    drop(closer);
    handle.join().expect("server thread").expect("server ran");
    run
}

fn bench_serve_throughput(c: &mut Criterion) {
    let store_dir = std::env::temp_dir().join(format!("mim-serve-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();

    // Cold storm, 4 workers, persistent store.
    let cold = run_load(
        WorkloadStore::persistent(&store_dir).expect("open store"),
        4,
        true,
    );
    let hit_rate = cold.cell_hits as f64 / (cold.cell_hits + cold.cell_misses).max(1) as f64;
    assert!(
        hit_rate >= 0.80,
        "cell-level hit rate {hit_rate:.3} under overlapping load must be >= 0.80"
    );

    // Same storm, 1 worker, fresh in-memory state: payloads must match
    // the 4-worker run byte for byte.
    let serial = run_load(WorkloadStore::new(), 1, true);
    assert_eq!(
        cold.reports, serial.reports,
        "reports must be byte-identical across worker counts"
    );

    // Warm restart: a fresh engine over the same on-disk store records
    // and replays nothing — zero functional executions.
    let warm = run_load(
        WorkloadStore::persistent(&store_dir).expect("reopen store"),
        4,
        true,
    );
    assert_eq!(
        warm.executions, 0,
        "warm restart must perform zero functional executions"
    );
    assert_eq!(
        cold.reports, warm.reports,
        "reports must be byte-identical across restarts"
    );

    // Instrumentation overhead: the same in-memory storm with latency
    // timestamping globally off vs on. Best-of-two per mode damps
    // scheduler noise; the comparison is wall-clock throughput.
    mim_obs::set_timing(false);
    let off = faster_of(run_load(WorkloadStore::new(), 4, true), || {
        run_load(WorkloadStore::new(), 4, true)
    });
    mim_obs::set_timing(true);
    let on = faster_of(run_load(WorkloadStore::new(), 4, true), || {
        run_load(WorkloadStore::new(), 4, true)
    });
    assert_eq!(
        off.reports, on.reports,
        "reports must be byte-identical with instrumentation off vs on"
    );
    let overhead = 1.0 - on.requests_per_second() / off.requests_per_second();
    assert!(
        on.requests_per_second() >= 0.95 * off.requests_per_second(),
        "instrumentation costs {:.1}% throughput (off {:.0} req/s, on {:.0} req/s); budget is 5%",
        overhead * 100.0,
        off.requests_per_second(),
        on.requests_per_second(),
    );
    assert!(
        on.run_p99_ns > 0.0,
        "the instrumented storm must populate the job latency histograms"
    );

    // Per-job profile capture: the default-on capture wraps every job in
    // a private ProfileSink (the protocol's `profile` command). Compare
    // the fully-instrumented storm (`on`, capture enabled) against the
    // same storm with capture disabled — the budget is the same 5%, and
    // payloads must not notice the sink either way.
    let capture_off = faster_of(run_load(WorkloadStore::new(), 4, false), || {
        run_load(WorkloadStore::new(), 4, false)
    });
    assert_eq!(
        capture_off.reports, on.reports,
        "reports must be byte-identical with profile capture off vs on"
    );
    let capture_overhead = 1.0 - on.requests_per_second() / capture_off.requests_per_second();
    assert!(
        on.requests_per_second() >= 0.95 * capture_off.requests_per_second(),
        "profile capture costs {:.1}% throughput (off {:.0} req/s, on {:.0} req/s); budget is 5%",
        capture_overhead * 100.0,
        capture_off.requests_per_second(),
        on.requests_per_second(),
    );

    // Criterion view: one warm submit→result round-trip over TCP.
    let engine = Engine::start(
        WorkloadStore::persistent(&store_dir).expect("reopen store"),
        CellMemo::new(),
        2,
        64,
    );
    let server = Server::bind("tcp:127.0.0.1:0", engine).expect("bind");
    let addr = server.addr().to_connect_string();
    let handle = std::thread::spawn(move || server.run());
    let pool = job_pool();
    let mut client = Client::connect(&addr).expect("client connects");
    let submitted = client.submit(&pool[0]).expect("prime");
    client.result_text(submitted.id).expect("prime result");
    let mut group = c.benchmark_group("serve");
    group.bench_function("warm_submit_result_tcp", |b| {
        b.iter(|| {
            let submitted = client.submit(&pool[0]).expect("submit");
            black_box(client.result_text(submitted.id).expect("result").len())
        })
    });
    group.finish();
    drop(client);
    let mut closer = Client::connect(&addr).expect("closer connects");
    closer.shutdown().expect("shutdown accepted");
    drop(closer);
    handle.join().expect("server thread").expect("server ran");
    std::fs::remove_dir_all(&store_dir).ok();

    #[derive(Serialize)]
    struct BenchRecord {
        bench: &'static str,
        clients: usize,
        requests: u64,
        distinct_jobs: usize,
        deduped_submissions: u64,
        cell_hits: u64,
        cell_misses: u64,
        cell_hit_rate: f64,
        cold_executions: u64,
        warm_restart_executions: u64,
        cold_seconds: f64,
        warm_seconds: f64,
        cold_requests_per_second: f64,
        warm_requests_per_second: f64,
        timing_off_requests_per_second: f64,
        timing_on_requests_per_second: f64,
        instrumentation_overhead_pct: f64,
        profile_capture_off_requests_per_second: f64,
        profile_capture_overhead_pct: f64,
        job_run_p50_ns: f64,
        job_run_p99_ns: f64,
        job_total_p50_ns: f64,
        job_total_p99_ns: f64,
        byte_identical_across_workers: bool,
        byte_identical_across_restarts: bool,
        byte_identical_instrumentation_on_vs_off: bool,
    }
    let record = BenchRecord {
        bench: "serve_throughput",
        clients: CLIENTS,
        requests: cold.requests,
        distinct_jobs: pool.len(),
        deduped_submissions: cold.deduped,
        cell_hits: cold.cell_hits,
        cell_misses: cold.cell_misses,
        cell_hit_rate: hit_rate,
        cold_executions: cold.executions,
        warm_restart_executions: warm.executions,
        cold_seconds: cold.seconds,
        warm_seconds: warm.seconds,
        cold_requests_per_second: cold.requests_per_second(),
        warm_requests_per_second: warm.requests_per_second(),
        timing_off_requests_per_second: off.requests_per_second(),
        timing_on_requests_per_second: on.requests_per_second(),
        instrumentation_overhead_pct: overhead * 100.0,
        profile_capture_off_requests_per_second: capture_off.requests_per_second(),
        profile_capture_overhead_pct: capture_overhead * 100.0,
        job_run_p50_ns: on.run_p50_ns,
        job_run_p99_ns: on.run_p99_ns,
        job_total_p50_ns: on.total_p50_ns,
        job_total_p99_ns: on.total_p99_ns,
        byte_identical_across_workers: true,
        byte_identical_across_restarts: true,
        byte_identical_instrumentation_on_vs_off: true,
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_serve.json");
    println!(
        "{} requests cold in {:.2}s ({:.0} req/s, {:.1}% cell hits), warm {:.2}s \
         with 0 executions, instrumentation overhead {:.1}%, profile capture \
         overhead {:.1}% (p99 job run {:.1}ms) -> BENCH_serve.json",
        cold.requests,
        cold.seconds,
        cold.requests_per_second(),
        hit_rate * 100.0,
        warm.seconds,
        overhead * 100.0,
        capture_overhead * 100.0,
        on.run_p99_ns / 1e6,
    );
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
