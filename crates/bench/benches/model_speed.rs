//! Criterion benchmarks for the §5 claim: once a workload is profiled,
//! the mechanistic model evaluates a design point in (sub-)microseconds,
//! which is what makes exploring hundreds of configurations "a few
//! seconds" instead of simulator-months.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use mim_core::{DesignSpace, MachineConfig, MechanisticModel, OooConfig, OooModel};
use mim_pipeline::PipelineSim;
use mim_profile::{Profiler, SweepProfiler};
use mim_workloads::{mibench, WorkloadSize};

fn bench_model_eval(c: &mut Criterion) {
    let machine = MachineConfig::default_config();
    let program = mibench::sha().program(WorkloadSize::Tiny);
    let inputs = Profiler::new(&machine).profile(&program).expect("profile");
    let model = MechanisticModel::new(&machine);

    c.bench_function("model/predict_one_design_point", |b| {
        b.iter(|| black_box(model.predict(black_box(&inputs))))
    });

    let ooo = OooModel::new(OooConfig::default_config());
    c.bench_function("model/ooo_predict_one_design_point", |b| {
        b.iter(|| black_box(ooo.predict(black_box(&inputs))))
    });
}

fn bench_design_space_eval(c: &mut Criterion) {
    let space = DesignSpace::paper_table2();
    let profiler = SweepProfiler::for_design_space(&space);
    let program = mibench::qsort().program(WorkloadSize::Tiny);
    let profile = profiler.profile(&program, None).expect("profile");

    c.bench_function("model/evaluate_192_point_space", |b| {
        b.iter(|| {
            let mut sum = 0.0;
            for point in space.points() {
                let inputs = profile.inputs_for(point.l2_index, point.predictor_index);
                sum += MechanisticModel::new(&point.machine).predict(&inputs).cpi();
            }
            black_box(sum)
        })
    });
}

fn bench_sim_vs_model(c: &mut Criterion) {
    // The actual speedup comparison on one design point: detailed
    // simulation vs model evaluation (profiling is a one-time cost
    // amortized over the whole space).
    let machine = MachineConfig::default_config();
    let program = mibench::dijkstra().program(WorkloadSize::Tiny);
    let inputs = Profiler::new(&machine).profile(&program).expect("profile");
    let model = MechanisticModel::new(&machine);
    let sim = PipelineSim::new(&machine);

    let mut group = c.benchmark_group("speedup");
    group.sample_size(10);
    group.bench_with_input(
        BenchmarkId::new("detailed_simulation", "dijkstra-tiny"),
        &program,
        |b, p| b.iter(|| black_box(sim.simulate(p).expect("sim"))),
    );
    group.bench_function(BenchmarkId::new("model_evaluation", "dijkstra-tiny"), |b| {
        b.iter(|| black_box(model.predict(black_box(&inputs))))
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_model_eval,
    bench_design_space_eval,
    bench_sim_vs_model
);
criterion_main!(benches);
