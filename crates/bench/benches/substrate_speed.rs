//! Criterion benchmarks for the substrate components: functional
//! simulation rate, cache/TLB access cost, predictor update cost,
//! single-pass multi-configuration profiling, and the cycle-accurate
//! pipeline simulator's instruction rate.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use mim_bpred::PredictorConfig;
use mim_cache::{
    CacheConfig, HierarchyConfig, MemAccessKind, MultiConfig, SetAssocCache, StackDistance,
};
use mim_core::MachineConfig;
use mim_isa::Vm;
use mim_pipeline::PipelineSim;
use mim_profile::Profiler;
use mim_workloads::{mibench, WorkloadSize};

fn bench_vm(c: &mut Criterion) {
    let program = mibench::sha().program(WorkloadSize::Tiny);
    let mut group = c.benchmark_group("vm");
    let n = {
        let mut vm = Vm::new(&program);
        vm.run(None).expect("run").instructions()
    };
    group.throughput(Throughput::Elements(n));
    group.bench_function("functional_execution", |b| {
        b.iter(|| {
            let mut vm = Vm::new(&program);
            black_box(vm.run(None).expect("run"))
        })
    });
    group.finish();
}

fn bench_pipeline(c: &mut Criterion) {
    let machine = MachineConfig::default_config();
    let program = mibench::sha().program(WorkloadSize::Tiny);
    let sim = PipelineSim::new(&machine);
    let n = sim.simulate(&program).expect("sim").instructions;
    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(n));
    group.bench_function("cycle_accurate_simulation", |b| {
        b.iter(|| black_box(sim.simulate(&program).expect("sim")))
    });
    group.finish();
}

fn bench_profiler(c: &mut Criterion) {
    let machine = MachineConfig::default_config();
    let program = mibench::sha().program(WorkloadSize::Tiny);
    let profiler = Profiler::new(&machine);
    let n = profiler.profile(&program).expect("profile").num_insts;
    let mut group = c.benchmark_group("profiler");
    group.throughput(Throughput::Elements(n));
    group.bench_function("single_config_profile", |b| {
        b.iter(|| black_box(profiler.profile(&program).expect("profile")))
    });
    group.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut group = c.benchmark_group("cache");
    group.throughput(Throughput::Elements(1));
    let config = CacheConfig::new("L1D", 32 * 1024, 4, 64).expect("config");
    let mut cache = SetAssocCache::new(config);
    let mut addr: u64 = 0;
    group.bench_function("set_assoc_access", |b| {
        b.iter(|| {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(64);
            black_box(cache.access(addr % (1 << 20)))
        })
    });

    let base = HierarchyConfig::default_hierarchy();
    let l2s = mim_core::DesignSpace::paper_table2().l2_configs().to_vec();
    let mut multi = MultiConfig::new(&base, l2s);
    group.bench_function("multi_config_access_8_l2s", |b| {
        b.iter(|| {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(64);
            multi.access(MemAccessKind::Load, addr % (1 << 22));
            black_box(multi.num_configs())
        })
    });

    let mut sd = StackDistance::new(64);
    group.bench_function("stack_distance_access", |b| {
        b.iter(|| {
            addr = addr.wrapping_mul(6364136223846793005).wrapping_add(64);
            sd.access(addr % (1 << 22));
            black_box(sd.accesses())
        })
    });
    group.finish();
}

fn bench_predictors(c: &mut Criterion) {
    let mut group = c.benchmark_group("bpred");
    group.throughput(Throughput::Elements(1));
    for config in [PredictorConfig::gshare_1k(), PredictorConfig::hybrid_3_5k()] {
        let mut p = config.build();
        let mut x: u64 = 1;
        group.bench_function(format!("predict_update/{}", config.name()), |b| {
            b.iter(|| {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(13);
                let pc = (x >> 33) as u32 % 512;
                let taken = (x >> 17) & 3 != 0;
                let pred = p.predict(pc);
                p.update(pc, taken);
                black_box(pred)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_vm,
    bench_pipeline,
    bench_profiler,
    bench_cache,
    bench_predictors
);
criterion_main!(benches);
