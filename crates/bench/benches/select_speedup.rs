//! `select_speedup`: the subset-sweep economy, measured.
//!
//! Quantifies what representative-input selection buys: a design-space
//! sweep over the ≤25% weighted subset versus the exhaustive suite, plus
//! the per-workload cost of signature extraction. Writes the measured
//! speedup and fidelity to `BENCH_select.json` at the workspace root so
//! the perf trajectory is tracked across PRs.

use std::hint::black_box;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use mim_core::{DesignSpace, MachineConfig};
use mim_runner::{EvalKind, Experiment, WorkloadSpec, WorkloadStore};
use mim_select::{KSelection, RepresentativeSet, Selection, Signature};
use mim_validate::BehaviorSpace;
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

fn corpus() -> Vec<WorkloadSpec> {
    let mut corpus = BehaviorSpace::default_grid().workload_specs();
    corpus.extend(mibench::all().into_iter().map(WorkloadSpec::from));
    corpus
}

fn space() -> DesignSpace {
    DesignSpace::new(MachineConfig::default_config())
        .with_widths(vec![1, 2, 3, 4])
        .expect("distinct widths")
        .with_depth_freq(vec![(5, 1.0), (7, 1.5), (9, 2.0), (11, 2.5)])
        .expect("distinct depth/frequency pairs")
}

fn sweep_seconds(specs: &[WorkloadSpec], store: &WorkloadStore) -> f64 {
    let t = Instant::now();
    let report = Experiment::new()
        .workloads(specs.iter().cloned())
        .size(WorkloadSize::Tiny)
        .design_space(space())
        .evaluators([EvalKind::Model])
        .threads(1)
        .with_cache(store.clone())
        .run()
        .expect("sweep");
    black_box(report.rows.len());
    t.elapsed().as_secs_f64()
}

fn bench_select_speedup(c: &mut Criterion) {
    let suite = corpus();
    let store = WorkloadStore::new();

    // Criterion view: signature extraction and selection on warm caches.
    let spec = WorkloadSpec::from(mibench::sha());
    Signature::extract(&store, &spec, WorkloadSize::Tiny, None).expect("warm");
    let mut group = c.benchmark_group("select");
    group.bench_function("signature_extract_warm", |b| {
        b.iter(|| {
            black_box(
                Signature::extract(&store, &spec, WorkloadSize::Tiny, None).expect("signature"),
            )
        })
    });
    let signatures: Vec<Signature> = suite
        .iter()
        .map(|w| Signature::extract(&store, w, WorkloadSize::Tiny, None).expect("signature"))
        .collect();
    let selection = Selection {
        k: KSelection::Fixed(suite.len() / 4),
        ..Selection::default()
    };
    group.bench_function("cluster_and_select_83", |b| {
        b.iter(|| black_box(RepresentativeSet::select(&signatures, &selection).expect("select")))
    });
    group.finish();

    // Steady-state economy measurement: one cold sweep each way, on
    // separate stores so the subset pays its own profiling like a real
    // subset-only study would.
    let set = RepresentativeSet::select(&signatures, &selection).expect("select");
    let representative_specs: Vec<WorkloadSpec> = set
        .names()
        .iter()
        .map(|name| {
            suite
                .iter()
                .find(|w| w.name() == *name)
                .expect("medoids come from the suite")
                .clone()
        })
        .collect();
    let exhaustive_seconds = sweep_seconds(&suite, &WorkloadStore::new());
    let subset_seconds = sweep_seconds(&representative_specs, &WorkloadStore::new());

    #[derive(Serialize)]
    struct BenchRecord {
        bench: &'static str,
        workloads: usize,
        representatives: usize,
        subset_fraction: f64,
        design_points: usize,
        exhaustive_sweep_seconds: f64,
        subset_sweep_seconds: f64,
        sweep_speedup: f64,
    }
    let record = BenchRecord {
        bench: "select_speedup",
        workloads: suite.len(),
        representatives: set.len(),
        subset_fraction: set.fraction(),
        design_points: space().len(),
        exhaustive_sweep_seconds: exhaustive_seconds,
        subset_sweep_seconds: subset_seconds,
        sweep_speedup: exhaustive_seconds / subset_seconds.max(1e-9),
    };
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_select.json");
    std::fs::write(
        path,
        serde_json::to_string_pretty(&record).expect("serialize"),
    )
    .expect("write BENCH_select.json");
    println!(
        "subset sweep {subset_seconds:.2}s vs exhaustive {exhaustive_seconds:.2}s \
         ({:.1}x) -> BENCH_select.json",
        exhaustive_seconds / subset_seconds.max(1e-9),
    );
}

criterion_group!(benches, bench_select_speedup);
criterion_main!(benches);
