//! Criterion benchmark for `Experiment` sweep throughput: the full
//! 192-point Table 2 space × N workloads, serial (`threads(1)`) vs
//! parallel (`threads(0)` = all cores), seeding the perf trajectory for
//! the design-space exploration path.
//!
//! On a multi-core host the parallel sweep must be measurably faster than
//! the serial one (the reports themselves are byte-identical either way);
//! on a single-core host the two converge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use mim_core::DesignSpace;
use mim_runner::{EvalKind, Experiment};
use mim_workloads::{mibench, Workload, WorkloadSize};

fn workloads() -> Vec<Workload> {
    vec![
        mibench::sha(),
        mibench::qsort(),
        mibench::dijkstra(),
        mibench::gsm_c(),
    ]
}

fn sweep(threads: usize, kinds: &[EvalKind]) -> usize {
    let report = Experiment::new()
        .workloads(workloads())
        .size(WorkloadSize::Tiny)
        .design_space(DesignSpace::paper_table2())
        .evaluators(kinds.iter().copied())
        .threads(threads)
        .run()
        .expect("sweep");
    report.rows.len()
}

fn bench_model_sweep(c: &mut Criterion) {
    // Model-only: the paper's exploration fast path. 192 points × 4
    // workloads from four cached profiling passes.
    let mut group = c.benchmark_group("sweep/model_192pt_4wl");
    group.throughput(Throughput::Elements(192 * 4));
    for threads in [1usize, 0] {
        let label = if threads == 1 { "serial" } else { "parallel" };
        group.bench_function(BenchmarkId::new(label, threads), |b| {
            b.iter(|| sweep(threads, &[EvalKind::Model]))
        });
    }
    group.finish();
}

fn bench_model_vs_sim_sweep(c: &mut Criterion) {
    // Model + detailed simulation: the validation grid, dominated by the
    // cycle-accurate simulator — the work the thread pool actually targets.
    let mut group = c.benchmark_group("sweep/model+sim_192pt_4wl");
    group.throughput(Throughput::Elements(192 * 4 * 2));
    group.measurement_time(std::time::Duration::from_secs(12));
    for threads in [1usize, 0] {
        let label = if threads == 1 { "serial" } else { "parallel" };
        group.bench_function(BenchmarkId::new(label, threads), |b| {
            b.iter(|| sweep(threads, &[EvalKind::Model, EvalKind::Sim]))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model_sweep, bench_model_vs_sim_sweep);
criterion_main!(benches);
