//! Figure 7: in-order vs out-of-order CPI stacks from mechanistic models
//! (the paper's first case study, §6.1). Both stacks come from models —
//! the in-order model of this paper and the out-of-order interval model of
//! Eyerman et al. — evaluated on identical profiles.

use mim_core::StackComponent;
use mim_runner::{EvalKind, EvalResult, Experiment};
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct ComparisonRow {
    benchmark: String,
    core: &'static str,
    base: f64,
    mul_div: f64,
    il1_miss: f64,
    il2_miss: f64,
    dl1_miss: f64,
    dl2_miss: f64,
    bpred_miss: f64,
    dependencies: f64,
    cpi: f64,
}

fn row_from(result: &EvalResult, core: &'static str) -> ComparisonRow {
    let stack = result.stack.as_ref().expect("analytical rows carry stacks");
    let n = result.instructions as f64;
    ComparisonRow {
        benchmark: result.workload.clone(),
        core,
        base: stack.cycles_of(StackComponent::Base) / n,
        mul_div: stack.mul_div() / n,
        il1_miss: stack.cycles_of(StackComponent::IL2Access) / n,
        il2_miss: stack.cycles_of(StackComponent::IL2Miss) / n,
        dl1_miss: stack.cycles_of(StackComponent::DL2Access) / n,
        dl2_miss: stack.cycles_of(StackComponent::DL2Miss) / n,
        bpred_miss: stack.cycles_of(StackComponent::BranchMiss) / n,
        dependencies: stack.dependencies() / n,
        cpi: result.cpi,
    }
}

fn main() -> std::io::Result<()> {
    // The paper shows 13 benchmarks; we use the closest matching set of
    // our kernels (its cjpeg/djpeg/toast map to jpeg_c/jpeg_d/gsm_c).
    let workloads = [
        mibench::jpeg_c(),
        mibench::dijkstra(),
        mibench::jpeg_d(),
        mibench::lame(),
        mibench::patricia(),
        mibench::susan_c(),
        mibench::susan_e(),
        mibench::susan_s(),
        mibench::tiff2bw(),
        mibench::tiff2rgba(),
        mibench::tiffdither(),
        mibench::tiffmedian(),
        mibench::gsm_c(),
    ];
    let names: Vec<&'static str> = workloads.iter().map(|w| w.name()).collect();

    // One experiment: the in-order model and the out-of-order interval
    // model (per-benchmark MLP estimated from the program, 128-entry ROB)
    // over identical cached profiles.
    let report = Experiment::new()
        .title("Figure 7: in-order vs out-of-order CPI stacks (4-wide)")
        .workloads(workloads)
        .size(WorkloadSize::Small)
        .evaluators([EvalKind::Model, EvalKind::Ooo])
        .rob_size(128)
        .run()
        .expect("experiment");

    println!("=== {} ===", report.title);
    println!(
        "{:<12} {:>8} | {:>6} {:>7} {:>7} {:>7} {:>7} {:>6} | {:>7}",
        "benchmark", "core", "base", "mul/div", "l2acc", "l2miss", "bpmiss", "deps", "CPI"
    );
    let mut out = Vec::new();
    for name in &names {
        for (evaluator, core) in [("model", "in-order"), ("ooo", "ooo")] {
            let result = report.get(name, 0, evaluator).expect("cell");
            let row = row_from(result, core);
            println!(
                "{:<12} {:>8} | {:>6.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>6.3} | {:>7.3}",
                row.benchmark,
                row.core,
                row.base,
                row.mul_div,
                row.il1_miss + row.dl1_miss,
                row.il2_miss + row.dl2_miss,
                row.bpred_miss,
                row.dependencies,
                row.cpi
            );
            out.push(row);
        }
    }

    // The paper's five observations, asserted mechanically.
    let get = |name: &str, core: &str| {
        out.iter()
            .find(|r| r.benchmark == name && r.core == core)
            .expect("row")
    };
    let mut deps_hidden = 0;
    for name in &names {
        if get(name, "ooo").dependencies == 0.0 && get(name, "in-order").dependencies > 0.0 {
            deps_hidden += 1;
        }
    }
    assert_eq!(
        deps_hidden,
        names.len(),
        "OoO must hide dependencies everywhere"
    );
    assert!(
        get("tiff2bw", "in-order").mul_div > 0.1,
        "tiff2bw must show a significant mul/div component in order"
    );
    assert_eq!(get("tiff2bw", "ooo").mul_div, 0.0);
    assert!(
        get("patricia", "ooo").bpred_miss > get("patricia", "in-order").bpred_miss,
        "per-branch cost must be larger out of order (resolution time)"
    );
    assert!(
        get("tiff2rgba", "ooo").dl2_miss < get("tiff2rgba", "in-order").dl2_miss,
        "OoO exploits MLP on the L2-miss component"
    );
    println!("\nall five §6.1 observations hold (deps hidden, mul/div hidden,");
    println!("branch cost larger OoO, L2 component smaller OoO, I-side equal).");
    mim_bench::write_json("fig7_inorder_vs_ooo", &out)?;
    Ok(())
}
