//! Figure 7: in-order vs out-of-order CPI stacks from mechanistic models
//! (the paper's first case study, §6.1). Both stacks come from models —
//! the in-order model of this paper and the out-of-order interval model of
//! Eyerman et al. — evaluated on identical profiles.

use mim_core::{MachineConfig, MechanisticModel, OooConfig, OooModel, StackComponent};
use mim_profile::Profiler;
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct ComparisonRow {
    benchmark: String,
    core: &'static str,
    base: f64,
    mul_div: f64,
    il1_miss: f64,
    il2_miss: f64,
    dl1_miss: f64,
    dl2_miss: f64,
    bpred_miss: f64,
    dependencies: f64,
    cpi: f64,
}

fn main() {
    // The paper shows 13 benchmarks; we use the closest matching set of
    // our kernels (its cjpeg/djpeg/toast map to jpeg_c/jpeg_d/gsm_c).
    let workloads = [
        mibench::jpeg_c(),
        mibench::dijkstra(),
        mibench::jpeg_d(),
        mibench::lame(),
        mibench::patricia(),
        mibench::susan_c(),
        mibench::susan_e(),
        mibench::susan_s(),
        mibench::tiff2bw(),
        mibench::tiff2rgba(),
        mibench::tiffdither(),
        mibench::tiffmedian(),
        mibench::gsm_c(),
    ];
    let machine = MachineConfig::default_config();
    let in_order = MechanisticModel::new(&machine);
    let profiler = Profiler::new(&machine);

    println!("=== Figure 7: in-order vs out-of-order CPI stacks (4-wide) ===");
    println!(
        "{:<12} {:>8} | {:>6} {:>7} {:>7} {:>7} {:>7} {:>6} | {:>7}",
        "benchmark", "core", "base", "mul/div", "l2acc", "l2miss", "bpmiss", "deps", "CPI"
    );
    let mut out = Vec::new();
    for w in &workloads {
        let program = w.program(WorkloadSize::Small);
        let inputs = profiler.profile(&program).expect("profile");
        let n = inputs.num_insts as f64;
        // Per-benchmark MLP: the interval model overlaps only the
        // independent long misses this workload actually exposes.
        let mlp = mim_profile::estimate_mlp(&program, &machine.hierarchy, 128, None)
            .expect("mlp")
            .mlp;
        let ooo = OooModel::new(OooConfig {
            machine: machine.clone(),
            rob_size: 128,
            mlp,
        });
        for (label, stack) in [
            ("in-order", in_order.predict(&inputs)),
            ("ooo", ooo.predict(&inputs)),
        ] {
            let row = ComparisonRow {
                benchmark: w.name().to_string(),
                core: label,
                base: stack.cycles_of(StackComponent::Base) / n,
                mul_div: stack.mul_div() / n,
                il1_miss: stack.cycles_of(StackComponent::IL2Access) / n,
                il2_miss: stack.cycles_of(StackComponent::IL2Miss) / n,
                dl1_miss: stack.cycles_of(StackComponent::DL2Access) / n,
                dl2_miss: stack.cycles_of(StackComponent::DL2Miss) / n,
                bpred_miss: stack.cycles_of(StackComponent::BranchMiss) / n,
                dependencies: stack.dependencies() / n,
                cpi: stack.cpi(),
            };
            println!(
                "{:<12} {:>8} | {:>6.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>6.3} | {:>7.3}",
                row.benchmark,
                row.core,
                row.base,
                row.mul_div,
                row.il1_miss + row.dl1_miss,
                row.il2_miss + row.dl2_miss,
                row.bpred_miss,
                row.dependencies,
                row.cpi
            );
            out.push(row);
        }
    }

    // The paper's five observations, asserted mechanically.
    let get = |name: &str, core: &str| {
        out.iter()
            .find(|r| r.benchmark == name && r.core == core)
            .expect("row")
    };
    let mut deps_hidden = 0;
    for w in &workloads {
        if get(w.name(), "ooo").dependencies == 0.0
            && get(w.name(), "in-order").dependencies > 0.0
        {
            deps_hidden += 1;
        }
    }
    assert_eq!(deps_hidden, workloads.len(), "OoO must hide dependencies everywhere");
    assert!(
        get("tiff2bw", "in-order").mul_div > 0.1,
        "tiff2bw must show a significant mul/div component in order"
    );
    assert_eq!(get("tiff2bw", "ooo").mul_div, 0.0);
    assert!(
        get("patricia", "ooo").bpred_miss > get("patricia", "in-order").bpred_miss,
        "per-branch cost must be larger out of order (resolution time)"
    );
    assert!(
        get("tiff2rgba", "ooo").dl2_miss < get("tiff2rgba", "in-order").dl2_miss,
        "OoO exploits MLP on the L2-miss component"
    );
    println!("\nall five §6.1 observations hold (deps hidden, mul/div hidden,");
    println!("branch cost larger OoO, L2 component smaller OoO, I-side equal).");
    mim_bench::write_json("fig7_inorder_vs_ooo", &out);
}
