//! Figure 3: model-predicted CPI vs detailed-simulation CPI for the 19
//! MiBench benchmarks on the default machine configuration.
//!
//! The paper reports an average CPI prediction error of 3.1% with a
//! maximum of 8.4% on this experiment.
//!
//! `--quick` runs the `Tiny` workload size (CI's smoke configuration):
//! the same grid and assertions, minutes faster, with a slightly looser
//! error bound (short runs weight cold-start effects more heavily).

use mim_bench::write_json;
use mim_runner::{print_comparison, EvalKind, Experiment};
use mim_workloads::{mibench, WorkloadSize};

fn main() -> std::io::Result<()> {
    let quick = std::env::args().any(|a| a == "--quick");
    let (size, bound) = if quick {
        (WorkloadSize::Tiny, 10.0)
    } else {
        (WorkloadSize::Small, 8.0)
    };
    let report = Experiment::new()
        .title("Figure 3: MiBench CPI validation (default machine)")
        .workloads(mibench::all())
        .size(size)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .run()
        .expect("experiment");
    let rows = report.compare("model", "sim");
    let (avg, _max) = print_comparison(&report.title, &rows);
    println!("\npaper reference: avg 3.1%, max 8.4%");
    write_json("fig3_validation", &rows)?;
    assert!(avg < bound, "average error regressed: {avg:.2}%");
    Ok(())
}
