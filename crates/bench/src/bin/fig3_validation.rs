//! Figure 3: model-predicted CPI vs detailed-simulation CPI for the 19
//! MiBench benchmarks on the default machine configuration.
//!
//! The paper reports an average CPI prediction error of 3.1% with a
//! maximum of 8.4% on this experiment.

use mim_bench::{print_validation, validate_one, write_json};
use mim_core::MachineConfig;
use mim_workloads::{mibench, WorkloadSize};

fn main() {
    let machine = MachineConfig::default_config();
    let rows: Vec<_> = mibench::all()
        .iter()
        .map(|w| validate_one(&machine, w, WorkloadSize::Small))
        .collect();
    let (avg, _max) = print_validation(
        "Figure 3: MiBench CPI validation (default machine)",
        &rows,
    );
    println!("\npaper reference: avg 3.1%, max 8.4%");
    write_json("fig3_validation", &rows);
    assert!(avg < 8.0, "average error regressed: {avg:.2}%");
}
