//! Figure 3: model-predicted CPI vs detailed-simulation CPI for the 19
//! MiBench benchmarks on the default machine configuration.
//!
//! The paper reports an average CPI prediction error of 3.1% with a
//! maximum of 8.4% on this experiment.

use mim_bench::write_json;
use mim_runner::{print_comparison, EvalKind, Experiment};
use mim_workloads::{mibench, WorkloadSize};

fn main() -> std::io::Result<()> {
    let report = Experiment::new()
        .title("Figure 3: MiBench CPI validation (default machine)")
        .workloads(mibench::all())
        .size(WorkloadSize::Small)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .run()
        .expect("experiment");
    let rows = report.compare("model", "sim");
    let (avg, _max) = print_comparison(&report.title, &rows);
    println!("\npaper reference: avg 3.1%, max 8.4%");
    write_json("fig3_validation", &rows)?;
    assert!(avg < 8.0, "average error regressed: {avg:.2}%");
    Ok(())
}
