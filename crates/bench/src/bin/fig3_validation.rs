//! Figure 3: model-predicted CPI vs detailed-simulation CPI for the 19
//! MiBench benchmarks on the default machine configuration.
//!
//! The paper reports an average CPI prediction error of 3.1% with a
//! maximum of 8.4% on this experiment.
//!
//! `--quick` runs the `Tiny` workload size (CI's smoke configuration):
//! the same grid and assertions, minutes faster, with a slightly looser
//! error bound (short runs weight cold-start effects more heavily). The
//! `--quick` JSON output is snapshot-tested byte-for-byte in
//! `tests/golden.rs`.

use mim_bench::cli::BenchArgs;
use mim_bench::{figures, write_json};
use mim_runner::print_comparison;

fn main() -> std::io::Result<()> {
    let quick = BenchArgs::parse().flag("--quick");
    let bound = if quick { 10.0 } else { 8.0 };
    let rows = figures::fig3_rows(quick);
    let (avg, _max) = print_comparison("Figure 3: MiBench CPI validation (default machine)", &rows);
    println!("\npaper reference: avg 3.1%, max 8.4%");
    write_json("fig3_validation", &rows)?;
    assert!(avg < bound, "average error regressed: {avg:.2}%");
    Ok(())
}
