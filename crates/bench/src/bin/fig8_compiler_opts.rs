//! Figure 8: normalized cycle stacks across compiler optimizations
//! (the paper's second case study, §6.2): `nosched` (no instruction
//! scheduling), `O3` (list-scheduled), and `unroll` (loop unrolling +
//! scheduling), normalized to `O3`.

use mim_core::StackComponent;
use mim_runner::{EvalKind, Experiment, WorkloadSpec};
use mim_workloads::{mibench, opt, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct CycleStackRow {
    benchmark: String,
    variant: &'static str,
    instructions: u64,
    base: f64,
    dependencies: f64,
    bpred_hit_taken: f64,
    bpred_miss: f64,
    mul_div: f64,
    l2: f64,
    total_cycles: f64,
    normalized: f64,
}

const VARIANTS: [&str; 3] = ["O3", "nosched", "unroll"];

fn main() -> std::io::Result<()> {
    // The paper shows the five benchmarks with the largest compiler
    // sensitivity; ours are chosen the same way (see EXPERIMENTS.md).
    let workloads = [
        mibench::gsm_c(),
        mibench::sha(),
        mibench::stringsearch(),
        mibench::susan_s(),
        mibench::tiffdither(),
    ];

    // Each compiler variant becomes its own workload spec ("sha/O3", ...):
    // fixed pre-built programs fed through the same evaluation pipeline.
    let mut specs = Vec::new();
    for w in &workloads {
        let nosched = w.program(WorkloadSize::Small);
        let o3 = opt::schedule(&nosched);
        let unrolled = opt::schedule(&opt::unroll(&nosched, 4));
        specs.push(WorkloadSpec::program(format!("{}/O3", w.name()), o3));
        specs.push(WorkloadSpec::program(
            format!("{}/nosched", w.name()),
            nosched,
        ));
        specs.push(WorkloadSpec::program(
            format!("{}/unroll", w.name()),
            unrolled,
        ));
    }

    let report = Experiment::new()
        .title("Figure 8: normalized cycle stacks across compiler options")
        .workloads(specs)
        .evaluators([EvalKind::Model])
        .run()
        .expect("experiment");

    println!("=== {} ===", report.title);
    println!(
        "{:<14} {:>8} {:>10} | {:>6} {:>6} {:>6} {:>6} {:>7} | {:>6}",
        "benchmark", "variant", "insts", "base", "deps", "takenB", "bpmiss", "mul/div", "norm"
    );
    let mut out = Vec::new();
    for w in &workloads {
        let baseline = report
            .get(&format!("{}/O3", w.name()), 0, "model")
            .expect("O3 cell")
            .cycles;
        for variant in VARIANTS {
            let result = report
                .get(&format!("{}/{variant}", w.name()), 0, "model")
                .expect("variant cell");
            let stack = result.stack.as_ref().expect("model rows carry stacks");
            let row = CycleStackRow {
                benchmark: w.name().to_string(),
                variant,
                instructions: result.instructions,
                base: stack.cycles_of(StackComponent::Base),
                dependencies: stack.dependencies(),
                bpred_hit_taken: stack.cycles_of(StackComponent::TakenBranch),
                bpred_miss: stack.cycles_of(StackComponent::BranchMiss),
                mul_div: stack.mul_div(),
                l2: stack.l2_access() + stack.l2_miss(),
                total_cycles: result.cycles,
                normalized: result.cycles / baseline,
            };
            println!(
                "{:<14} {:>8} {:>10} | {:>6.3} {:>6.3} {:>6.3} {:>6.3} {:>7.3} | {:>6.3}",
                row.benchmark,
                row.variant,
                row.instructions,
                row.base / baseline,
                row.dependencies / baseline,
                row.bpred_hit_taken / baseline,
                row.bpred_miss / baseline,
                row.mul_div / baseline,
                row.normalized
            );
            out.push(row);
        }
        println!();
    }

    // §6.2 shape checks.
    let get = |name: &str, variant: &str| {
        out.iter()
            .find(|r| r.benchmark == name && r.variant == variant)
            .expect("row")
    };
    let mut sched_helped = 0;
    let mut unroll_helped = 0;
    let mut taken_reduced = 0;
    for w in &workloads {
        if get(w.name(), "O3").dependencies <= get(w.name(), "nosched").dependencies {
            sched_helped += 1;
        }
        if get(w.name(), "unroll").total_cycles < get(w.name(), "nosched").total_cycles {
            unroll_helped += 1;
        }
        if get(w.name(), "unroll").bpred_hit_taken < get(w.name(), "nosched").bpred_hit_taken {
            taken_reduced += 1;
        }
        // Unrolling never increases dynamic instruction count.
        assert!(
            get(w.name(), "unroll").instructions <= get(w.name(), "nosched").instructions,
            "{}: unrolling increased instruction count",
            w.name()
        );
    }
    println!("scheduling reduced the dependency component on {sched_helped}/5 benchmarks");
    println!("unrolling reduced taken-branch cycles on {taken_reduced}/5 benchmarks");
    println!("unrolling reduced total cycles on {unroll_helped}/5 benchmarks");
    println!("(the paper likewise reports most but not all benchmarks improving, §6.2 —");
    println!(" kernels whose loop bounds are recomputed in the body are not unrollable,");
    println!(" exactly like loops gcc's unroller rejects)");
    assert!(unroll_helped >= 3, "unrolling should help most benchmarks");
    assert!(
        taken_reduced >= 3,
        "unrolling should remove taken branches on most benchmarks"
    );
    mim_bench::write_json("fig8_compiler_opts", &out)?;
    Ok(())
}
