//! Representative-input selection over the full scenario corpus: the 64
//! synthetic behaviours of the validation grid plus the 19 bundled
//! MiBench kernels (83 workloads), characterized, clustered, and reduced
//! to a ≤25% representative subset whose weighted metrics must reproduce
//! the exhaustive suite:
//!
//! * weighted-CPI ranking of the design points at Kendall tau ≥ 0.9,
//! * ≥ 90% recovery of the exhaustive (delay, energy) Pareto frontier,
//! * with the residual extrapolation error sim-verified at probe points.
//!
//! `--quick` (CI's smoke configuration) runs Tiny inputs over a 16-point
//! width × depth/frequency space; the default run covers Small inputs
//! over the full 192-point Table 2 space. The JSON report is
//! byte-deterministic across runs and thread counts (asserted here by
//! re-running serially against the same store).

use mim_bench::cli::BenchArgs;
use mim_bench::{write_json, SWEEP_LIMIT};
use mim_core::{DesignSpace, MachineConfig};
use mim_runner::{WorkloadSpec, WorkloadStore};
use mim_select::{KSelection, Selection, SubsetReport, SubsetRun};
use mim_validate::BehaviorSpace;
use mim_workloads::{mibench, WorkloadSize};

fn corpus() -> Vec<WorkloadSpec> {
    let mut corpus = BehaviorSpace::default_grid().workload_specs();
    corpus.extend(mibench::all().into_iter().map(WorkloadSpec::from));
    corpus
}

fn run(quick: bool, probes: usize, threads: usize, cache: WorkloadStore) -> SubsetReport {
    let space = if quick {
        // Axes whose CPI impact survives Tiny footprints: width and
        // pipeline depth/frequency (tiny working sets barely exercise
        // the L2 axis, which would turn the ranking into noise).
        DesignSpace::new(MachineConfig::default_config())
            .with_widths(vec![1, 2, 3, 4])
            .expect("distinct widths")
            .with_depth_freq(vec![(5, 1.0), (7, 1.5), (9, 2.0), (11, 2.5)])
            .expect("distinct depth/frequency pairs")
    } else {
        DesignSpace::paper_table2()
    };
    let suite = corpus();
    // Spend the whole ≤25% budget: silhouette auto-k favours the
    // coarsest clean split (2 blobs here) and BIC lands around 7 — both
    // rank the design points perfectly (tau = 1.0) but leave the
    // weighted CPI *level* 16–64% off the exhaustive mean. At the full
    // budget the medoids tile behaviour space finely enough that the
    // level lands within ~1% too.
    let budget = suite.len() / 4;
    let mut run = SubsetRun::new(space)
        .title("representative-input selection over behaviours + MiBench")
        .workloads(suite)
        .selection(Selection {
            k: KSelection::Fixed(budget),
            ..Selection::default()
        })
        .verify(true)
        .sim_probes(probes)
        .threads(threads)
        .with_cache(cache);
    if quick {
        run = run.size(WorkloadSize::Tiny);
    } else {
        run = run.size(WorkloadSize::Small).limit(SWEEP_LIMIT);
    }
    run.run().expect("subset run")
}

fn main() -> std::io::Result<()> {
    let args = BenchArgs::parse();
    let quick = args.flag("--quick");
    let probes = args.value("--probes", 2usize);
    let cache = WorkloadStore::new();
    let report = run(quick, probes, 0, cache.clone());

    let verify = report.verify.as_ref().expect("verification enabled");
    let frontier = report.frontier.as_ref().expect("frontier enabled");
    let recall = frontier.recall.expect("verification computes recall");

    println!("=== {} ===", report.title);
    println!(
        "{} workloads -> {} representatives ({:.1}% of the suite, silhouette {:.3})",
        report.workloads.len(),
        report.selection.k,
        100.0 * report.subset_fraction,
        report.selection.silhouette,
    );
    for representative in &report.selection.representatives {
        println!(
            "  {:<24} weight {:.3}  stands in for {} workloads",
            representative.name,
            representative.weight,
            representative.members.len(),
        );
    }
    println!(
        "\nweighted-CPI ranking over {} design points: Kendall tau = {:.3} (target >= 0.9)",
        report.machines.len(),
        verify.rank_tau,
    );
    match &report.sim_probe {
        Some(probe) => println!(
            "extrapolation error: mean {:.2}%  max {:.2}% (model);  sim-verified bound {:.2}% at {} probes",
            verify.mean_error_percent,
            verify.max_error_percent,
            probe.bound_percent,
            probe.machines.len(),
        ),
        None => println!(
            "extrapolation error: mean {:.2}%  max {:.2}% (model);  sim probes disabled",
            verify.mean_error_percent, verify.max_error_percent,
        ),
    }
    println!(
        "(delay, energy) frontier: {} subset contenders ({:.0}% margin) vs {} exhaustive frontier \
         points -> recall {:.1}% (target >= 90%)",
        frontier.subset.len(),
        100.0 * frontier.margin,
        frontier.exhaustive.as_ref().expect("verification").len(),
        100.0 * recall,
    );
    println!(
        "sweep economy: exhaustive {:.2}s vs subset {:.2}s ({:.1}x)",
        report.timing.verify_seconds,
        report.timing.subset_seconds,
        report.sweep_speedup(),
    );

    // The acceptance gate: the representative economy must hold.
    assert!(
        report.subset_fraction <= 0.25 + 1e-12,
        "subset too large: {:.1}% of the suite",
        100.0 * report.subset_fraction
    );
    assert!(
        verify.rank_tau >= 0.9,
        "weighted-CPI ranking broke down: tau = {:.3}",
        verify.rank_tau
    );
    assert!(
        recall >= 0.9,
        "frontier recovery too low: {:.1}%",
        100.0 * recall
    );

    // Byte determinism: a serial re-run over the same store must
    // serialize identically (recordings and profiles are reused, so this
    // costs only the cheap re-evaluation).
    let serial = run(quick, probes, 1, cache);
    assert_eq!(
        report.to_json(),
        serial.to_json(),
        "report bytes must not depend on thread count"
    );

    write_json("representativeness", &report)?;
    Ok(())
}
