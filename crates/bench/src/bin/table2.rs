//! Table 2: the architecture design space and default configuration.

use mim_bench::figures;
use mim_core::{DesignSpace, MachineConfig};

fn main() -> std::io::Result<()> {
    let default = MachineConfig::default_config();
    println!("=== Table 2: default configuration ===");
    println!("  {default}");
    println!("  L1I: {}", default.hierarchy.l1i);
    println!("  L1D: {}", default.hierarchy.l1d);
    println!("  L2:  {}", default.hierarchy.l2);
    println!(
        "  TLBs: {} entries x {} B pages (I and D)",
        default.hierarchy.itlb.entries, default.hierarchy.itlb.page_bytes
    );
    println!("  predictor: {}", default.predictor.name());

    let space = DesignSpace::paper_table2();
    println!("\n=== Table 2: design space ===");
    println!("  pipeline depth/frequency: 5 stages @ 600 MHz | 7 @ 800 MHz | 9 @ 1 GHz");
    println!("  width: 1 | 2 | 3 | 4");
    print!("  L2 candidates:");
    for l2 in space.l2_configs() {
        print!(" {}", l2.name());
    }
    println!();
    print!("  predictors:");
    for p in space.predictor_configs() {
        print!(" {}", p.name());
    }
    println!();
    println!("  total design points: {}", space.len());
    assert_eq!(space.len(), 192, "paper's space has 192 points");

    let ids = figures::table2_design_point_ids();
    assert_eq!(ids.len(), 192);
    mim_bench::write_json("table2_design_points", &ids)?;
    Ok(())
}
