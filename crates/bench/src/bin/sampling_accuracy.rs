//! `sampling_accuracy`: the accuracy/speed trade-off of sampled
//! simulation, tracked across PRs as `BENCH_sample.json`.
//!
//! For each sampling fraction (1/5, 1/10, 1/50) the binary measures, on
//! one recorded trace: CPI error vs the full detailed simulation, the
//! reported 95% CI half-width, the wall-clock speedup over full
//! simulation, and the streaming working set (the fixed replay buffer)
//! against the full encoded trace — the peak-memory proxy for streaming
//! vs materialized replay. The record asserts the headline contract:
//! sampling 1 instruction in 10 (with full functional warming of caches
//! and branch predictors in the gaps) is demonstrably faster than
//! simulating everything.
//!
//! `--quick` (CI's smoke configuration) measures the Tiny input;
//! the default run uses Small for steadier timings.

use std::time::Instant;

use mim_bench::cli::BenchArgs;
use mim_core::MachineConfig;
use mim_pipeline::PipelineSim;
use mim_trace::{Sampling, StreamingReplay, Trace};
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct FractionRecord {
    plan: String,
    /// Target measured fraction of the plan (length / period).
    fraction: f64,
    /// Sample units the run actually closed.
    units: u64,
    cpi: f64,
    cpi_error_percent: f64,
    ci95_half_width: f64,
    /// Best-of-N wall seconds for the sampled run (warming included).
    wall_seconds: f64,
    speedup_vs_full: f64,
    /// Timeline intervals the plan's windows actually measured.
    phases_covered: u64,
    /// Mean |sampled − full| CPI error over covered intervals, percent —
    /// the per-phase view that localizes where sampling error lives.
    phase_mean_error_percent: f64,
    /// Worst single covered interval, percent.
    phase_max_error_percent: f64,
}

#[derive(Serialize)]
struct BenchRecord {
    bench: &'static str,
    workload: String,
    size: String,
    instructions: u64,
    full_cpi: f64,
    full_wall_seconds: f64,
    /// Bytes a streaming replay holds resident, independent of trace
    /// length — the peak-memory proxy for the O(sample unit) claim.
    streaming_buffer_bytes: usize,
    encoded_trace_bytes: usize,
    /// Instruction width of the CPI-timeline intervals the per-phase
    /// error columns compare over.
    timeline_interval: u64,
    fractions: Vec<FractionRecord>,
}

/// The contract asserted on every run: 1-in-10 sampling with full
/// warming beats full simulation by at least this factor.
const SPEEDUP_FLOOR_1_IN_10: f64 = 1.25;

fn best_of<T>(runs: u32, mut f: impl FnMut() -> T) -> (f64, T) {
    let mut best = f64::MAX;
    let mut last = f();
    for _ in 0..runs {
        let t = Instant::now();
        last = f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    (best, last)
}

fn main() -> std::io::Result<()> {
    let quick = BenchArgs::parse().flag("--quick");
    let size = if quick {
        WorkloadSize::Tiny
    } else {
        WorkloadSize::Small
    };
    let workload = mibench::sha();
    let program = workload.program(size);
    let trace = Trace::record(&program, None).expect("recording");
    let sim = PipelineSim::new(&MachineConfig::default_config());

    let (full_wall, full) = best_of(5, || {
        let mut replay = trace.replay(&program).expect("replay");
        sim.simulate_source(&mut replay).expect("full sim")
    });

    // Per-phase reference: a timeline-enabled full run (outside the timed
    // loops, so the wall-clock columns stay timeline-free). Sampled
    // timelines align with it interval-for-interval (walked positions),
    // so each covered interval localizes the sampling error to a phase.
    let timeline_interval = (trace.len() / 16).max(1_000);
    let full_timeline = {
        let mut replay = trace.replay(&program).expect("replay");
        PipelineSim::new(&MachineConfig::default_config())
            .with_timeline(timeline_interval)
            .simulate_source(&mut replay)
            .expect("full sim")
            .timeline
            .expect("timeline requested")
    };

    let plans = [
        Sampling::try_new(500, 100)
            .unwrap()
            .with_warmup(400)
            .with_offset(50),
        Sampling::default_plan(),
        Sampling::try_new(5000, 100)
            .unwrap()
            .with_warmup(1000)
            .with_offset(500),
    ];
    let fractions: Vec<FractionRecord> = plans
        .iter()
        .map(|plan| {
            let (wall, result) = best_of(5, || {
                let mut replay = trace.replay(&program).expect("replay").with_sampling(*plan);
                sim.simulate_sampled(&mut replay).expect("sampled sim")
            });
            let stats = result.sampling.expect("sampled stats");
            let sampled_timeline = {
                let mut replay = trace.replay(&program).expect("replay").with_sampling(*plan);
                PipelineSim::new(&MachineConfig::default_config())
                    .with_timeline(timeline_interval)
                    .simulate_sampled(&mut replay)
                    .expect("sampled sim")
                    .timeline
                    .expect("timeline requested")
            };
            let mut phase_errors = Vec::new();
            for i in 0..sampled_timeline.len().min(full_timeline.len()) {
                if sampled_timeline.insts_of(i) == 0 || full_timeline.insts_of(i) == 0 {
                    continue;
                }
                let reference = full_timeline.cpi_of_interval(i);
                let sampled = sampled_timeline.cpi_of_interval(i);
                phase_errors.push(100.0 * (sampled - reference).abs() / reference);
            }
            let phase_mean = if phase_errors.is_empty() {
                0.0
            } else {
                phase_errors.iter().sum::<f64>() / phase_errors.len() as f64
            };
            let phase_max = phase_errors.iter().cloned().fold(0.0, f64::max);
            FractionRecord {
                plan: format!(
                    "p{}-l{}-w{}-o{}",
                    plan.period(),
                    plan.length(),
                    plan.warmup(),
                    plan.offset()
                ),
                fraction: plan.fraction(),
                units: stats.units,
                cpi: stats.cpi,
                cpi_error_percent: 100.0 * (stats.cpi - full.cpi()).abs() / full.cpi(),
                ci95_half_width: stats.ci_half_width,
                wall_seconds: wall,
                speedup_vs_full: full_wall / wall,
                phases_covered: phase_errors.len() as u64,
                phase_mean_error_percent: phase_mean,
                phase_max_error_percent: phase_max,
            }
        })
        .collect();

    // The streaming buffer is plan-independent; measure it from a
    // round-trip through the serialized encoding.
    let bytes = trace.to_bytes();
    let stream =
        StreamingReplay::new(std::io::Cursor::new(&bytes[..]), &program).expect("streaming replay");
    let record = BenchRecord {
        bench: "sampling_accuracy",
        workload: workload.name().to_string(),
        size: size.to_string(),
        instructions: trace.len(),
        full_cpi: full.cpi(),
        full_wall_seconds: full_wall,
        streaming_buffer_bytes: stream.buffer_bytes(),
        encoded_trace_bytes: trace.encoded_bytes(),
        timeline_interval,
        fractions,
    };

    for f in &record.fractions {
        println!(
            "{:>16}  fraction {:>5.3}  units {:>4}  cpi {:.4} (err {:.2}%, ci ±{:.4})  \
             {:.1}x vs full",
            f.plan,
            f.fraction,
            f.units,
            f.cpi,
            f.cpi_error_percent,
            f.ci95_half_width,
            f.speedup_vs_full
        );
        println!(
            "{:>16}  per-phase error over {} intervals: mean {:.2}%, max {:.2}%",
            "", f.phases_covered, f.phase_mean_error_percent, f.phase_max_error_percent
        );
    }
    println!(
        "streaming buffer {} B vs encoded trace {} B ({:.1}x smaller)",
        record.streaming_buffer_bytes,
        record.encoded_trace_bytes,
        record.encoded_trace_bytes as f64 / record.streaming_buffer_bytes as f64
    );

    let one_in_ten = record
        .fractions
        .iter()
        .find(|f| f.plan.starts_with("p1000-"))
        .expect("1-in-10 plan measured");
    assert!(
        one_in_ten.speedup_vs_full >= SPEEDUP_FLOOR_1_IN_10,
        "1-in-10 sampling regressed below its {SPEEDUP_FLOOR_1_IN_10}x floor: {:.2}x",
        one_in_ten.speedup_vs_full
    );
    assert!(
        record.streaming_buffer_bytes < record.encoded_trace_bytes,
        "streaming working set must undercut the materialized encoding"
    );

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sample.json");
    let json = serde_json::to_string_pretty(&record).expect("serialize");
    std::fs::write(path, json)?;
    println!("[wrote BENCH_sample.json]");
    Ok(())
}
