//! Ablation study: how much does each modeled mechanism matter?
//!
//! The paper's core argument (§1) is that in-order processors *require*
//! modeling of inter-instruction dependencies and non-unit latencies —
//! mechanisms out-of-order models can ignore. This binary quantifies that
//! claim on our substrate: it removes one group of penalty terms from the
//! model at a time (one custom [`ModelEvaluator`] per ablation, all
//! sharing a single profiling pass) and reports how the average prediction
//! error against detailed simulation degrades.

use mim_bench::write_json;
use mim_core::{MachineConfig, StackComponent};
use mim_runner::{EvalKind, Experiment, ModelEvaluator};
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    ablated_term: String,
    avg_error_percent: f64,
    max_error_percent: f64,
    degradation_vs_full: f64,
}

fn main() -> std::io::Result<()> {
    let machine = MachineConfig::default_config();
    let groups: [(&str, Vec<StackComponent>); 7] = [
        ("(none — full model)", vec![]),
        (
            "dependencies (Eq. 8-16)",
            vec![
                StackComponent::DepUnit,
                StackComponent::DepLL,
                StackComponent::DepLoad,
            ],
        ),
        (
            "long-latency ops (Eq. 5-6)",
            vec![StackComponent::Mul, StackComponent::Div],
        ),
        (
            "branch mispredictions (Eq. 4)",
            vec![StackComponent::BranchMiss],
        ),
        (
            "taken-branch bubbles (§3.3)",
            vec![StackComponent::TakenBranch],
        ),
        (
            "cache misses (Eq. 3)",
            vec![
                StackComponent::IL2Access,
                StackComponent::IL2Miss,
                StackComponent::DL2Access,
                StackComponent::DL2Miss,
            ],
        ),
        ("TLB misses", vec![StackComponent::TlbMiss]),
    ];

    // One experiment: the detailed simulator plus one ablated model
    // evaluator per term group, all reusing the same cached profiles.
    let mut experiment = Experiment::new()
        .title("Model-term ablation (19 MiBench kernels, default machine)")
        .workloads(mibench::all())
        .size(WorkloadSize::Small)
        .machine(machine.clone())
        .evaluators([EvalKind::Sim]);
    let cache = experiment.profile_cache();
    for (label, disabled) in &groups {
        experiment = experiment.evaluator(
            ModelEvaluator::new(&machine)
                .with_cache(cache.clone())
                .with_name(*label)
                .with_ablation(disabled.clone()),
        );
    }
    let report = experiment.run().expect("experiment");

    println!("=== {} ===", report.title);
    println!(
        "{:<32} {:>10} {:>10} {:>13}",
        "term removed", "avg |err|", "max |err|", "degradation"
    );
    let mut rows = Vec::new();
    let mut full_avg = 0.0;
    for (label, disabled) in &groups {
        let errs: Vec<f64> = report
            .compare(label, "sim")
            .iter()
            .map(|c| c.error_percent.abs())
            .collect();
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().cloned().fold(0.0, f64::max);
        if disabled.is_empty() {
            full_avg = avg;
        }
        let degradation = avg - full_avg;
        println!("{label:<32} {avg:>9.2}% {max:>9.2}% {degradation:>+12.2}%");
        rows.push(AblationRow {
            ablated_term: label.to_string(),
            avg_error_percent: avg,
            max_error_percent: max,
            degradation_vs_full: degradation,
        });
    }

    // The paper's thesis, asserted: dependencies and long-latency ops are
    // first-class error sources on in-order cores.
    let degradation_of = |label: &str| {
        rows.iter()
            .find(|r| r.ablated_term.starts_with(label))
            .expect("row")
            .degradation_vs_full
    };
    assert!(
        degradation_of("dependencies") > 5.0,
        "removing dependency modeling must cost several points of error"
    );
    assert!(
        degradation_of("long-latency") > 1.0,
        "removing LL modeling must visibly hurt"
    );
    println!(
        "\ndropping dependency modeling costs {:+.1}% average error — the paper's\n\
         central claim that in-order cores need dependency modeling (§1).",
        degradation_of("dependencies")
    );
    write_json("ablation", &rows)?;
    Ok(())
}
