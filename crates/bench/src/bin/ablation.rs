//! Ablation study: how much does each modeled mechanism matter?
//!
//! The paper's core argument (§1) is that in-order processors *require*
//! modeling of inter-instruction dependencies and non-unit latencies —
//! mechanisms out-of-order models can ignore. This binary quantifies that
//! claim on our substrate: it removes one group of penalty terms from the
//! model at a time and reports how the average prediction error against
//! detailed simulation degrades.

use mim_bench::write_json;
use mim_core::{MachineConfig, MechanisticModel, StackComponent};
use mim_pipeline::PipelineSim;
use mim_profile::Profiler;
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct AblationRow {
    ablated_term: String,
    avg_error_percent: f64,
    max_error_percent: f64,
    degradation_vs_full: f64,
}

fn main() {
    let machine = MachineConfig::default_config();
    let model = MechanisticModel::new(&machine);
    let profiler = Profiler::new(&machine);
    let sim = PipelineSim::new(&machine);

    // Gather profiles and reference CPIs once.
    let mut cases = Vec::new();
    for w in mibench::all() {
        let program = w.program(WorkloadSize::Small);
        let inputs = profiler.profile(&program).expect("profile");
        let reference = sim.simulate(&program).expect("sim").cpi();
        cases.push((inputs, reference));
    }

    let groups: [(&str, Vec<StackComponent>); 7] = [
        ("(none — full model)", vec![]),
        (
            "dependencies (Eq. 8-16)",
            vec![
                StackComponent::DepUnit,
                StackComponent::DepLL,
                StackComponent::DepLoad,
            ],
        ),
        (
            "long-latency ops (Eq. 5-6)",
            vec![StackComponent::Mul, StackComponent::Div],
        ),
        (
            "branch mispredictions (Eq. 4)",
            vec![StackComponent::BranchMiss],
        ),
        ("taken-branch bubbles (§3.3)", vec![StackComponent::TakenBranch]),
        (
            "cache misses (Eq. 3)",
            vec![
                StackComponent::IL2Access,
                StackComponent::IL2Miss,
                StackComponent::DL2Access,
                StackComponent::DL2Miss,
            ],
        ),
        ("TLB misses", vec![StackComponent::TlbMiss]),
    ];

    println!("=== Model-term ablation (19 MiBench kernels, default machine) ===");
    println!(
        "{:<32} {:>10} {:>10} {:>13}",
        "term removed", "avg |err|", "max |err|", "degradation"
    );
    let mut rows = Vec::new();
    let mut full_avg = 0.0;
    for (label, disabled) in &groups {
        let mut errs = Vec::new();
        for (inputs, reference) in &cases {
            let cpi = model.predict_ablated(inputs, disabled).cpi();
            errs.push(100.0 * (cpi - reference).abs() / reference);
        }
        let avg = errs.iter().sum::<f64>() / errs.len() as f64;
        let max = errs.iter().cloned().fold(0.0, f64::max);
        if disabled.is_empty() {
            full_avg = avg;
        }
        let degradation = avg - full_avg;
        println!("{label:<32} {avg:>9.2}% {max:>9.2}% {degradation:>+12.2}%");
        rows.push(AblationRow {
            ablated_term: label.to_string(),
            avg_error_percent: avg,
            max_error_percent: max,
            degradation_vs_full: degradation,
        });
    }

    // The paper's thesis, asserted: dependencies and long-latency ops are
    // first-class error sources on in-order cores.
    let degradation_of = |label: &str| {
        rows.iter()
            .find(|r| r.ablated_term.starts_with(label))
            .expect("row")
            .degradation_vs_full
    };
    assert!(
        degradation_of("dependencies") > 5.0,
        "removing dependency modeling must cost several points of error"
    );
    assert!(
        degradation_of("long-latency") > 1.0,
        "removing LL modeling must visibly hurt"
    );
    println!(
        "\ndropping dependency modeling costs {:+.1}% average error — the paper's\n\
         central claim that in-order cores need dependency modeling (§1).",
        degradation_of("dependencies")
    );
    write_json("ablation", &rows);
}
