//! Behavior-space differential validation: the mechanistic model vs the
//! detailed simulator across a grid of synthetic behaviours
//! (branch predictability × memory shape × ILP × mix) crossed with a
//! width sweep of design points, with per-term error attribution.
//!
//! This generalizes the Figure 3 spot check ("accurate on the bundled
//! MiBench points") into "accurate across the scenario space", and tells
//! you *which* model term is wrong wherever model and simulation
//! disagree.
//!
//! `--quick` (CI's smoke configuration) runs the default short-loop
//! grid; the default run covers the *same* behaviours with 8× longer
//! loops, washing out warmup effects. The JSON report is
//! byte-deterministic across runs and thread counts.

use mim_bench::cli::BenchArgs;
use mim_bench::write_json;
use mim_core::{DesignSpace, MachineConfig};
use mim_validate::{print_summary, BehaviorSpace, DifferentialRun};

fn main() -> std::io::Result<()> {
    let quick = BenchArgs::parse().flag("--quick");
    let space = if quick {
        BehaviorSpace::default_grid()
    } else {
        BehaviorSpace::default_grid_scaled(8)
    };
    let designs = DesignSpace::new(MachineConfig::default_config())
        .with_widths(vec![1, 2, 3, 4])
        .expect("distinct widths");
    assert!(space.len() >= 64, "behavior grid too small");
    assert!(designs.len() >= 4, "design grid too small");

    let run = DifferentialRun::new(space, designs)
        .title("behavior-space differential validation (64 behaviours x 4 widths)")
        .budget_percent(10.0)
        .worst(5)
        .threads(0);
    let report = run.run().expect("differential run");
    print_summary(&report);

    // The profile-swap shifts certify that model and simulator measure
    // identical event counts on this substrate: every disagreement is
    // approximation error, not measurement error.
    let max_swap = report
        .summary
        .terms
        .iter()
        .map(|t| t.max_abs_swap_cpi)
        .fold(0.0, f64::max);
    assert!(
        max_swap < 1e-12,
        "profile swaps moved the model: measurement divergence {max_swap}"
    );
    assert!(
        report.summary.mean_abs_error_percent < 10.0,
        "mean |CPI error| regressed: {:.2}%",
        report.summary.mean_abs_error_percent
    );
    write_json("validation_sweep", &report)?;
    Ok(())
}
