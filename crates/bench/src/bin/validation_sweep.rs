//! Behavior-space differential validation: the mechanistic model vs the
//! detailed simulator across a grid of synthetic behaviours
//! (branch predictability × memory shape × ILP × mix) crossed with a
//! width sweep of design points, with per-term error attribution.
//!
//! This generalizes the Figure 3 spot check ("accurate on the bundled
//! MiBench points") into "accurate across the scenario space", and tells
//! you *which* model term is wrong wherever model and simulation
//! disagree.
//!
//! `--quick` (CI's smoke configuration) runs the default short-loop
//! grid; the default run covers the *same* behaviours with 8× longer
//! loops, washing out warmup effects. The JSON report is
//! byte-deterministic across runs and thread counts.

use mim_bench::cli::BenchArgs;
use mim_bench::write_json;
use mim_core::{DesignSpace, MachineConfig};
use mim_runner::{EvalKind, Experiment};
use mim_validate::{print_summary, BehaviorSpace, DifferentialRun};
use mim_workloads::{mibench, WorkloadSize};

/// Sampled-simulation cross-check: for every (workload, width) cell the
/// sampled CPI must land inside its *own reported* 95% confidence
/// interval around the full simulation's CPI, plus a small epsilon (2% of
/// the full CPI) covering the non-sampling bias a CLT interval cannot
/// see (the shared pipeline-drain cycles and boundary effects of finite
/// sample units).
fn sampled_cross_check(quick: bool) {
    let workloads = if quick {
        vec![
            mibench::sha(),
            mibench::qsort(),
            mibench::dijkstra(),
            mibench::stringsearch(),
        ]
    } else {
        mibench::all()
    };
    let designs = DesignSpace::new(MachineConfig::default_config())
        .with_widths(vec![1, 2, 4])
        .expect("distinct widths");
    let report = Experiment::new()
        .title("sampled-vs-full cross-check")
        .workloads(workloads)
        .size(WorkloadSize::Tiny)
        .design_space(designs)
        .evaluators([EvalKind::Sim, EvalKind::Sampled])
        .timeline(5_000)
        .threads(0)
        .run()
        .expect("cross-check experiment");

    let sampled_name = report
        .evaluators
        .iter()
        .find(|e| e.starts_with("sampled"))
        .expect("sampled evaluator ran")
        .clone();
    let pairs = report.compare(&sampled_name, "sim");
    assert!(!pairs.is_empty(), "cross-check produced no cells");
    let mut worst = 0.0f64;
    for pair in &pairs {
        let row = report
            .get(&pair.workload, pair.machine_index, &sampled_name)
            .expect("sampled row");
        let summary = row.sampling.expect("sampled rows carry a summary");
        let tolerance = summary.cpi_ci95 + 0.02 * pair.baseline_cpi;
        let err = (pair.subject_cpi - pair.baseline_cpi).abs();
        worst = worst.max(err - summary.cpi_ci95);
        assert!(
            err <= tolerance,
            "{} width cell {}: sampled CPI {:.4} vs full {:.4} \
             outside CI ±{:.4} (+2% bias allowance)",
            pair.workload,
            pair.machine_index,
            pair.subject_cpi,
            pair.baseline_cpi,
            summary.cpi_ci95,
        );
    }
    println!(
        "sampled cross-check: {} cells within CI+2%, worst excess over CI {:.4} CPI",
        pairs.len(),
        worst.max(0.0),
    );

    // Per-phase localization: both evaluators carried CPI timelines
    // (walked-position aligned), so sampled-vs-full error pins to the
    // specific execution intervals where it lives instead of averaging
    // out over the whole run.
    let mut covered = 0usize;
    let mut worst_phase = 0.0f64;
    let mut worst_at = String::from("-");
    for pair in &pairs {
        let sampled = report
            .get(&pair.workload, pair.machine_index, &sampled_name)
            .expect("sampled row");
        let full = report
            .get(&pair.workload, pair.machine_index, "sim")
            .expect("sim row");
        let (Some(s_tl), Some(f_tl)) = (&sampled.timeline, &full.timeline) else {
            panic!(
                "{} width cell {}: timeline requested but absent",
                pair.workload, pair.machine_index
            );
        };
        assert_eq!(s_tl.interval(), f_tl.interval(), "aligned interval widths");
        for i in 0..s_tl.len().min(f_tl.len()) {
            if s_tl.insts_of(i) == 0 || f_tl.insts_of(i) == 0 {
                continue;
            }
            let reference = f_tl.cpi_of_interval(i);
            let err = 100.0 * (s_tl.cpi_of_interval(i) - reference).abs() / reference;
            covered += 1;
            if err > worst_phase {
                worst_phase = err;
                worst_at = format!(
                    "{} width cell {} interval {i}",
                    pair.workload, pair.machine_index
                );
            }
        }
    }
    assert!(covered > 0, "per-phase view covered no intervals");
    println!("per-phase view: {covered} covered intervals, worst {worst_phase:.2}% at {worst_at}");
}

fn main() -> std::io::Result<()> {
    let quick = BenchArgs::parse().flag("--quick");
    sampled_cross_check(quick);
    let space = if quick {
        BehaviorSpace::default_grid()
    } else {
        BehaviorSpace::default_grid_scaled(8)
    };
    let designs = DesignSpace::new(MachineConfig::default_config())
        .with_widths(vec![1, 2, 3, 4])
        .expect("distinct widths");
    assert!(space.len() >= 64, "behavior grid too small");
    assert!(designs.len() >= 4, "design grid too small");

    let run = DifferentialRun::new(space, designs)
        .title("behavior-space differential validation (64 behaviours x 4 widths)")
        .budget_percent(10.0)
        .worst(5)
        .threads(0);
    let report = run.run().expect("differential run");
    print_summary(&report);

    // The profile-swap shifts certify that model and simulator measure
    // identical event counts on this substrate: every disagreement is
    // approximation error, not measurement error.
    let max_swap = report
        .summary
        .terms
        .iter()
        .map(|t| t.max_abs_swap_cpi)
        .fold(0.0, f64::max);
    assert!(
        max_swap < 1e-12,
        "profile swaps moved the model: measurement divergence {max_swap}"
    );
    assert!(
        report.summary.mean_abs_error_percent < 10.0,
        "mean |CPI error| regressed: {:.2}%",
        report.summary.mean_abs_error_percent
    );
    write_json("validation_sweep", &report)?;
    Ok(())
}
