//! Figure 4: model CPI stacks as a function of superscalar width for
//! `sha` (scales best), `tiffdither` (middle), and `dijkstra` (scales
//! worst), with the detailed-simulation CPI as reference.

use mim_core::{DesignSpace, MachineConfig, StackComponent};
use mim_runner::{EvalKind, Experiment};
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct StackRow {
    benchmark: String,
    width: u32,
    base: f64,
    mul_div: f64,
    l2_access: f64,
    l2_miss: f64,
    bpred_miss: f64,
    bpred_hit_taken: f64,
    tlb_miss: f64,
    dependencies: f64,
    model_cpi: f64,
    sim_cpi: f64,
}

fn main() -> std::io::Result<()> {
    let widths = [1u32, 2, 3, 4];
    let report = Experiment::new()
        .title("Figure 4: CPI stacks vs width")
        .workloads([mibench::sha(), mibench::tiffdither(), mibench::dijkstra()])
        .size(WorkloadSize::Small)
        .design_space(
            DesignSpace::new(MachineConfig::default_config())
                .with_widths(widths.to_vec())
                .expect("distinct widths"),
        )
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .run()
        .expect("experiment");

    println!("=== {} ===", report.title);
    println!(
        "{:<12} {:>2} | {:>6} {:>7} {:>7} {:>7} {:>7} {:>7} {:>6} {:>6} | {:>9} {:>8}",
        "benchmark",
        "W",
        "base",
        "mul/div",
        "l2acc",
        "l2miss",
        "bpmiss",
        "bphitT",
        "tlb",
        "deps",
        "modelCPI",
        "simCPI"
    );
    let mut out = Vec::new();
    for benchmark in &report.workloads {
        for (index, &width) in widths.iter().enumerate() {
            let model = report.get(benchmark, index, "model").expect("model cell");
            let sim = report.get(benchmark, index, "sim").expect("sim cell");
            let stack = model.stack.as_ref().expect("model rows carry stacks");
            let n = model.instructions as f64;
            let row = StackRow {
                benchmark: benchmark.clone(),
                width,
                base: stack.cycles_of(StackComponent::Base) / n,
                mul_div: stack.mul_div() / n,
                l2_access: stack.l2_access() / n,
                l2_miss: stack.l2_miss() / n,
                bpred_miss: stack.cycles_of(StackComponent::BranchMiss) / n,
                bpred_hit_taken: stack.cycles_of(StackComponent::TakenBranch) / n,
                tlb_miss: stack.cycles_of(StackComponent::TlbMiss) / n,
                dependencies: stack.dependencies() / n,
                model_cpi: model.cpi,
                sim_cpi: sim.cpi,
            };
            println!(
                "{:<12} {:>2} | {:>6.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>7.3} {:>6.3} {:>6.3} | {:>9.3} {:>8.3}",
                row.benchmark,
                width,
                row.base,
                row.mul_div,
                row.l2_access,
                row.l2_miss,
                row.bpred_miss,
                row.bpred_hit_taken,
                row.tlb_miss,
                row.dependencies,
                row.model_cpi,
                row.sim_cpi
            );
            out.push(row);
        }
        println!();
    }

    // The paper's headline observations, asserted mechanically:
    let cpi = |name: &str, w: u32| {
        out.iter()
            .find(|r| r.benchmark == name && r.width == w)
            .map(|r| r.model_cpi)
            .expect("row")
    };
    let speedup = |name: &str| cpi(name, 1) / cpi(name, 4);
    println!(
        "width-4 speedups: sha {:.2}x, tiffdither {:.2}x, dijkstra {:.2}x",
        speedup("sha"),
        speedup("tiffdither"),
        speedup("dijkstra")
    );
    assert!(
        speedup("sha") > speedup("dijkstra"),
        "sha must benefit more from width than dijkstra"
    );
    let dep = |name: &str, w: u32| {
        out.iter()
            .find(|r| r.benchmark == name && r.width == w)
            .map(|r| r.dependencies)
            .expect("row")
    };
    assert!(
        dep("dijkstra", 4) > dep("dijkstra", 1),
        "dijkstra's dependency component must grow with width"
    );
    mim_bench::write_json("fig4_width_stacks", &out)?;
    Ok(())
}
