//! Figure 9: energy-delay-product design-space exploration (the paper's
//! third case study, §6.3). For each benchmark, EDP is computed over all
//! 192 design points twice — once from the mechanistic model's predicted
//! cycles ("Estimated EDP") and once from detailed simulation ("Detailed
//! EDP") — and the chosen optima are compared.
//!
//! The paper finds the model picks the simulator's optimal configuration
//! for 12 of 19 benchmarks, is within 0.5% of optimal EDP for 6 more, and
//! within 5% for the last (adpcm_d, which picks width 2 instead of 3).
//!
//! Run with `--full` to evaluate all 19 benchmarks (default: the paper's
//! four plotted benchmarks). `--quick` shrinks the grid to the golden-
//! snapshot configuration (`Tiny` inputs, truncated budget, strided
//! space) whose JSON output `tests/golden.rs` asserts byte-for-byte; the
//! paper-level optimality assertions only run at full precision.

use mim_bench::cli::BenchArgs;
use mim_bench::{figures, write_json};

fn main() -> std::io::Result<()> {
    let args = BenchArgs::parse();
    let full = args.flag("--full");
    let quick = args.flag("--quick");
    let results = figures::fig9_results(quick, full);

    println!("=== Figure 9: EDP design-space exploration ===");
    for r in &results {
        println!(
            "{:<12} model picks {:<44} sim optimum {:<44} gap {:+.2}%",
            r.benchmark, r.model_optimum, r.sim_optimum, r.edp_gap_percent
        );
    }

    let exact = results.iter().filter(|r| r.exact_match).count();
    let near = results
        .iter()
        .filter(|r| !r.exact_match && r.edp_gap_percent < 0.5)
        .count();
    let within5 = results.iter().filter(|r| r.edp_gap_percent < 5.0).count();
    println!(
        "\nmodel finds the exact EDP optimum on {exact}/{} benchmarks; {near} more within 0.5%;\n\
         {within5}/{} within 5% of the optimal EDP",
        results.len(),
        results.len()
    );
    println!("paper reference: 12/19 exact, 6 within 0.5%, all within 5%");
    if !quick {
        // The paper itself has one outlier (adpcm_d picks width 2 instead
        // of 3, a <5% EDP gap); allow one comparable outlier here. The
        // quick grid is too coarse for these bounds.
        assert!(
            within5 >= results.len() - 1,
            "more than one benchmark's model pick exceeds 5% EDP gap"
        );
        let worst = results
            .iter()
            .map(|r| r.edp_gap_percent)
            .fold(0.0f64, f64::max);
        assert!(worst < 12.0, "worst EDP gap too large: {worst:.1}%");
    }
    write_json("fig9_edp", &results)?;
    Ok(())
}
