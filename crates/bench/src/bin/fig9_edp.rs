//! Figure 9: energy-delay-product design-space exploration (the paper's
//! third case study, §6.3). For each benchmark, EDP is computed over all
//! 192 design points twice — once from the mechanistic model's predicted
//! cycles ("Estimated EDP") and once from detailed simulation ("Detailed
//! EDP") — and the chosen optima are compared.
//!
//! The paper finds the model picks the simulator's optimal configuration
//! for 12 of 19 benchmarks, is within 0.5% of optimal EDP for 6 more, and
//! within 5% for the last (adpcm_d, which picks width 2 instead of 3).
//!
//! Run with `--full` to evaluate all 19 benchmarks (default: the paper's
//! four plotted benchmarks).

use mim_bench::{write_json, SWEEP_LIMIT};
use mim_core::{DesignSpace, MechanisticModel};
use mim_pipeline::PipelineSim;
use mim_power::{Activity, EnergyModel};
use mim_profile::SweepProfiler;
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct EdpResult {
    benchmark: String,
    model_optimum: String,
    sim_optimum: String,
    exact_match: bool,
    /// EDP excess of the model's pick over the simulator's optimum, %.
    edp_gap_percent: f64,
}

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let workloads = if full {
        mibench::all()
    } else {
        vec![
            mibench::adpcm_d(),
            mibench::gsm_c(),
            mibench::lame(),
            mibench::patricia(),
        ]
    };
    let space = DesignSpace::paper_table2();
    let profiler = SweepProfiler::for_design_space(&space);
    let limit = Some(SWEEP_LIMIT);

    println!("=== Figure 9: EDP design-space exploration ===");
    let mut results = Vec::new();
    for w in &workloads {
        let program = w.program(WorkloadSize::Small);
        let profile = profiler.profile(&program, limit).expect("profile");

        let mut best_model: Option<(f64, String)> = None;
        let mut sim_edps: Vec<(f64, String)> = Vec::new();
        let mut model_pick_sim_edp: Option<f64> = None;
        let mut rows = Vec::new();
        for point in space.points() {
            let inputs = profile.inputs_for(point.l2_index, point.predictor_index);
            let energy = EnergyModel::new(&point.machine);
            let stack = MechanisticModel::new(&point.machine).predict(&inputs);
            let edp_model = energy
                .evaluate(&Activity::from_model(&inputs, stack.total_cycles()))
                .edp();
            let sim = PipelineSim::new(&point.machine)
                .simulate_limit(&program, limit)
                .expect("sim");
            let edp_sim = energy.evaluate(&Activity::from_sim(&sim, &inputs)).edp();
            let id = point.machine.id();
            rows.push((id.clone(), edp_model, edp_sim));
            if best_model.as_ref().is_none_or(|(e, _)| edp_model < *e) {
                best_model = Some((edp_model, id.clone()));
                model_pick_sim_edp = Some(edp_sim);
            }
            sim_edps.push((edp_sim, id));
        }
        sim_edps.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
        let (best_sim_edp, sim_optimum) = sim_edps.first().cloned().expect("nonempty");
        let (_, model_optimum) = best_model.expect("nonempty");
        let gap = 100.0 * (model_pick_sim_edp.expect("picked") - best_sim_edp) / best_sim_edp;
        println!(
            "{:<12} model picks {:<44} sim optimum {:<44} gap {:+.2}%",
            w.name(),
            model_optimum,
            sim_optimum,
            gap
        );
        results.push(EdpResult {
            benchmark: w.name().to_string(),
            exact_match: model_optimum == sim_optimum,
            model_optimum,
            sim_optimum,
            edp_gap_percent: gap,
        });
    }

    let exact = results.iter().filter(|r| r.exact_match).count();
    let near = results
        .iter()
        .filter(|r| !r.exact_match && r.edp_gap_percent < 0.5)
        .count();
    let within5 = results
        .iter()
        .filter(|r| r.edp_gap_percent < 5.0)
        .count();
    println!(
        "\nmodel finds the exact EDP optimum on {exact}/{} benchmarks; {near} more within 0.5%;\n\
         {within5}/{} within 5% of the optimal EDP",
        results.len(),
        results.len()
    );
    println!("paper reference: 12/19 exact, 6 within 0.5%, all within 5%");
    // The paper itself has one outlier (adpcm_d picks width 2 instead of
    // 3, a <5% EDP gap); allow one comparable outlier here.
    assert!(
        within5 >= results.len() - 1,
        "more than one benchmark's model pick exceeds 5% EDP gap"
    );
    let worst = results
        .iter()
        .map(|r| r.edp_gap_percent)
        .fold(0.0f64, f64::max);
    assert!(worst < 12.0, "worst EDP gap too large: {worst:.1}%");
    write_json("fig9_edp", &results);
}
