//! Figure 9: energy-delay-product design-space exploration (the paper's
//! third case study, §6.3). For each benchmark, EDP is computed over all
//! 192 design points twice — once from the mechanistic model's predicted
//! cycles ("Estimated EDP") and once from detailed simulation ("Detailed
//! EDP") — and the chosen optima are compared.
//!
//! The paper finds the model picks the simulator's optimal configuration
//! for 12 of 19 benchmarks, is within 0.5% of optimal EDP for 6 more, and
//! within 5% for the last (adpcm_d, which picks width 2 instead of 3).
//!
//! Run with `--full` to evaluate all 19 benchmarks (default: the paper's
//! four plotted benchmarks).

use mim_bench::{write_json, SWEEP_LIMIT};
use mim_core::DesignSpace;
use mim_runner::{EvalKind, Experiment};
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct EdpResult {
    benchmark: String,
    model_optimum: String,
    sim_optimum: String,
    exact_match: bool,
    /// EDP excess of the model's pick over the simulator's optimum, %.
    edp_gap_percent: f64,
}

fn main() -> std::io::Result<()> {
    let full = std::env::args().any(|a| a == "--full");
    let workloads = if full {
        mibench::all()
    } else {
        vec![
            mibench::adpcm_d(),
            mibench::gsm_c(),
            mibench::lame(),
            mibench::patricia(),
        ]
    };

    let report = Experiment::new()
        .title("Figure 9: EDP design-space exploration")
        .workloads(workloads)
        .size(WorkloadSize::Small)
        .limit(SWEEP_LIMIT)
        .design_space(DesignSpace::paper_table2())
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .energy(true)
        .threads(0)
        .run()
        .expect("experiment");

    println!("=== {} ===", report.title);
    let mut results = Vec::new();
    for benchmark in &report.workloads {
        // The model's EDP landscape picks a configuration...
        let (model_pick, _) = report
            .rows_for("model")
            .filter(|r| &r.workload == benchmark)
            .map(|r| (r.machine_index, r.edp().expect("energy enabled")))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite EDP"))
            .expect("nonempty");
        // ...which is scored by, and compared against, detailed simulation.
        let (sim_pick, best_sim_edp) = report
            .rows_for("sim")
            .filter(|r| &r.workload == benchmark)
            .map(|r| (r.machine_index, r.edp().expect("energy enabled")))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite EDP"))
            .expect("nonempty");
        let model_pick_sim_edp = report
            .get(benchmark, model_pick, "sim")
            .and_then(|r| r.edp())
            .expect("sim cell at model pick");
        let model_optimum = report.machines[model_pick].clone();
        let sim_optimum = report.machines[sim_pick].clone();
        let gap = 100.0 * (model_pick_sim_edp - best_sim_edp) / best_sim_edp;
        println!(
            "{:<12} model picks {:<44} sim optimum {:<44} gap {:+.2}%",
            benchmark, model_optimum, sim_optimum, gap
        );
        results.push(EdpResult {
            benchmark: benchmark.clone(),
            exact_match: model_optimum == sim_optimum,
            model_optimum,
            sim_optimum,
            edp_gap_percent: gap,
        });
    }

    let exact = results.iter().filter(|r| r.exact_match).count();
    let near = results
        .iter()
        .filter(|r| !r.exact_match && r.edp_gap_percent < 0.5)
        .count();
    let within5 = results.iter().filter(|r| r.edp_gap_percent < 5.0).count();
    println!(
        "\nmodel finds the exact EDP optimum on {exact}/{} benchmarks; {near} more within 0.5%;\n\
         {within5}/{} within 5% of the optimal EDP",
        results.len(),
        results.len()
    );
    println!("paper reference: 12/19 exact, 6 within 0.5%, all within 5%");
    // The paper itself has one outlier (adpcm_d picks width 2 instead of
    // 3, a <5% EDP gap); allow one comparable outlier here.
    assert!(
        within5 >= results.len() - 1,
        "more than one benchmark's model pick exceeds 5% EDP gap"
    );
    let worst = results
        .iter()
        .map(|r| r.edp_gap_percent)
        .fold(0.0f64, f64::max);
    assert!(worst < 12.0, "worst EDP gap too large: {worst:.1}%");
    write_json("fig9_edp", &results)?;
    Ok(())
}
