//! Figure 5: cumulative distribution of the model's CPI prediction error
//! across the full 192-point design space × 19 MiBench benchmarks, plus
//! the §5 exploration-speedup measurement.
//!
//! The paper reports: average error 2.5%, maximum 9.6%, and >90% of design
//! points below 6% error; exploring the space with the model is three
//! orders of magnitude faster than detailed simulation.
//!
//! Run with `--quick` to subsample the space (every 8th point).

use mim_bench::cli::BenchArgs;
use mim_bench::{write_json, SWEEP_LIMIT};
use mim_core::DesignSpace;
use mim_runner::{EvalKind, Experiment};
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct SpaceResult {
    points_evaluated: usize,
    avg_error_percent: f64,
    max_error_percent: f64,
    p90_error_percent: f64,
    below_6_percent: f64,
    cdf_percentiles: Vec<(u32, f64)>,
    profile_seconds: f64,
    model_eval_seconds: f64,
    sim_seconds: f64,
    speedup_model_vs_sim: f64,
}

fn main() -> std::io::Result<()> {
    let quick = BenchArgs::parse().flag("--quick");
    let stride = if quick { 8 } else { 1 };

    // One experiment declares the whole study: per-workload one-pass
    // profiling, the model on every design point, and the detailed
    // simulation reference — executed in parallel across all cores.
    let report = Experiment::new()
        .title("Figure 5: error CDF across the design space")
        .workloads(mibench::all())
        .size(WorkloadSize::Small)
        .limit(SWEEP_LIMIT)
        .design_space(DesignSpace::paper_table2())
        .stride(stride)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .threads(0)
        .run()
        .expect("experiment");

    let mut errors: Vec<f64> = report
        .compare("model", "sim")
        .iter()
        .map(|r| r.error_percent.abs())
        .collect();
    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = errors.len();
    let avg = errors.iter().sum::<f64>() / n as f64;
    let max = *errors.last().expect("nonempty");
    let pct = |p: usize| errors[(n * p / 100).min(n - 1)];
    let below6 = 100.0 * errors.iter().filter(|&&e| e < 6.0).count() as f64 / n as f64;

    println!("\n=== {} ===", report.title);
    println!("evaluations: {n} (benchmarks x design points)");
    println!("cumulative distribution of |error|:");
    let mut cdf = Vec::new();
    for p in [10u32, 25, 50, 75, 90, 95, 99] {
        let v = pct(p as usize);
        println!("  p{p:<3} {v:>6.2}%");
        cdf.push((p, v));
    }
    println!("average |error| = {avg:.2}%   max = {max:.2}%");
    println!("design points below 6% error: {below6:.1}%");
    println!("paper reference: avg 2.5%, max 9.6%, 90% of points < 6%");

    // §5 exploration cost: per-evaluator serial seconds come from the
    // per-cell wall times the report records.
    let profile_seconds = report.timing.profile_seconds;
    let model_eval_seconds = report.evaluator_seconds("model");
    let sim_seconds = report.evaluator_seconds("sim");
    let speedup = sim_seconds / model_eval_seconds.max(1e-9);
    println!("\n=== §5 exploration cost ===");
    println!("profiling (once per benchmark): {profile_seconds:.2} s");
    println!("model evaluation ({n} points):  {model_eval_seconds:.4} s");
    println!("detailed simulation reference:  {sim_seconds:.2} s");
    println!("model-vs-simulation speedup:    {speedup:.0}x (paper: ~3 orders of magnitude)");
    println!(
        "grid wall time on {} threads:   {:.2} s",
        report.timing.threads, report.timing.eval_seconds
    );

    write_json(
        "fig5_design_space",
        &SpaceResult {
            points_evaluated: n,
            avg_error_percent: avg,
            max_error_percent: max,
            p90_error_percent: pct(90),
            below_6_percent: below6,
            cdf_percentiles: cdf,
            profile_seconds,
            model_eval_seconds,
            sim_seconds,
            speedup_model_vs_sim: speedup,
        },
    )?;
    Ok(())
}
