//! Figure 5: cumulative distribution of the model's CPI prediction error
//! across the full 192-point design space × 19 MiBench benchmarks, plus
//! the §5 exploration-speedup measurement.
//!
//! The paper reports: average error 2.5%, maximum 9.6%, and >90% of design
//! points below 6% error; exploring the space with the model is three
//! orders of magnitude faster than detailed simulation.
//!
//! Run with `--quick` to subsample the space (every 8th point).

use std::time::Instant;

use mim_bench::{write_json, SWEEP_LIMIT};
use mim_core::{DesignSpace, MechanisticModel};
use mim_pipeline::PipelineSim;
use mim_profile::SweepProfiler;
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

#[derive(Serialize)]
struct SpaceResult {
    points_evaluated: usize,
    avg_error_percent: f64,
    max_error_percent: f64,
    p90_error_percent: f64,
    below_6_percent: f64,
    cdf_percentiles: Vec<(u32, f64)>,
    profile_seconds: f64,
    model_eval_seconds: f64,
    sim_seconds: f64,
    speedup_model_vs_sim: f64,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let stride = if quick { 8 } else { 1 };
    let space = DesignSpace::paper_table2();
    let profiler = SweepProfiler::for_design_space(&space);
    let limit = Some(SWEEP_LIMIT);

    // Phase 1: profile every benchmark once (the only workload-dependent
    // cost of model-based exploration).
    let t_profile = Instant::now();
    let mut profiles = Vec::new();
    for w in mibench::all() {
        let program = w.program(WorkloadSize::Small);
        let profile = profiler.profile(&program, limit).expect("profile");
        profiles.push((w, program, profile));
    }
    let profile_seconds = t_profile.elapsed().as_secs_f64();

    // Phase 2: model evaluation over the whole space (instantaneous).
    let points: Vec<_> = space.points().step_by(stride).collect();
    let t_model = Instant::now();
    let mut model_cpis = vec![vec![0.0f64; points.len()]; profiles.len()];
    for (bi, (_, _, profile)) in profiles.iter().enumerate() {
        for (pi, point) in points.iter().enumerate() {
            let inputs = profile.inputs_for(point.l2_index, point.predictor_index);
            model_cpis[bi][pi] = MechanisticModel::new(&point.machine).predict(&inputs).cpi();
        }
    }
    let model_eval_seconds = t_model.elapsed().as_secs_f64();

    // Phase 3: the detailed-simulation reference (the expensive part the
    // model replaces).
    let t_sim = Instant::now();
    let mut errors = Vec::new();
    for (bi, (w, program, _)) in profiles.iter().enumerate() {
        for (pi, point) in points.iter().enumerate() {
            let sim = PipelineSim::new(&point.machine)
                .simulate_limit(program, limit)
                .expect("sim");
            let err = 100.0 * (model_cpis[bi][pi] - sim.cpi()).abs() / sim.cpi();
            errors.push(err);
        }
        eprintln!("  simulated {} across {} points", w.name(), points.len());
    }
    let sim_seconds = t_sim.elapsed().as_secs_f64();

    errors.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let n = errors.len();
    let avg = errors.iter().sum::<f64>() / n as f64;
    let max = *errors.last().expect("nonempty");
    let pct = |p: usize| errors[(n * p / 100).min(n - 1)];
    let below6 = 100.0 * errors.iter().filter(|&&e| e < 6.0).count() as f64 / n as f64;

    println!("\n=== Figure 5: error CDF across the design space ===");
    println!("evaluations: {n} (benchmarks x design points)");
    println!("cumulative distribution of |error|:");
    let mut cdf = Vec::new();
    for p in [10u32, 25, 50, 75, 90, 95, 99] {
        let v = pct(p as usize);
        println!("  p{p:<3} {v:>6.2}%");
        cdf.push((p, v));
    }
    println!("average |error| = {avg:.2}%   max = {max:.2}%");
    println!("design points below 6% error: {below6:.1}%");
    println!("paper reference: avg 2.5%, max 9.6%, 90% of points < 6%");

    let speedup = sim_seconds / model_eval_seconds.max(1e-9);
    println!("\n=== §5 exploration cost ===");
    println!("profiling (once per benchmark): {profile_seconds:.2} s");
    println!("model evaluation ({n} points):  {model_eval_seconds:.4} s");
    println!("detailed simulation reference:  {sim_seconds:.2} s");
    println!("model-vs-simulation speedup:    {speedup:.0}x (paper: ~3 orders of magnitude)");

    write_json(
        "fig5_design_space",
        &SpaceResult {
            points_evaluated: n,
            avg_error_percent: avg,
            max_error_percent: max,
            p90_error_percent: pct(90),
            below_6_percent: below6,
            cdf_percentiles: cdf,
            profile_seconds,
            model_eval_seconds,
            sim_seconds,
            speedup_model_vs_sim: speedup,
        },
    );
}
