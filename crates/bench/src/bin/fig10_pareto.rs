//! Figure 10 (extension): Pareto-frontier exploration of the Table 2
//! design space under delay/energy objectives, demonstrating the paper's
//! headline workflow (§5–6) end to end: the mechanistic model scores all
//! 192 points from one profiling pass per benchmark, margin-relaxed
//! dominance prunes the space to frontier contenders, and only the
//! survivors are re-evaluated with detailed simulation.
//!
//! The run is validated against the exhaustive simulation reference: the
//! hybrid (model-pruned + sim-verified) frontier must recover ≥ 90% of
//! the exhaustive sim frontier while simulating < 20% of the space.
//!
//! Run with `--quick` to subsample the benchmark list (every 4th MiBench
//! workload, like fig5's subsampling knob).

use mim_bench::cli::BenchArgs;
use mim_bench::{write_json, SWEEP_LIMIT};
use mim_core::DesignSpace;
use mim_explore::{Exploration, Frontier, Objective};
use mim_runner::{EvalKind, ProfileCache};
use mim_workloads::{mibench, WorkloadSize};
use serde::Serialize;

/// Pruning slack granted to model error. Frontier scores aggregate
/// across benchmarks, where the model's per-point errors (2.5% on
/// average, Fig. 5) largely cancel — 2% of slack on the mean keeps every
/// true frontier point alive (100% recall on both the quick and full
/// runs) while pruning >81% of the space. Override with
/// `--margin <fraction>`.
const MARGIN: f64 = 0.02;

#[derive(Serialize)]
struct ParetoResult {
    benchmarks: usize,
    space_points: usize,
    margin: f64,
    sim_points: usize,
    sim_fraction: f64,
    model_frontier_len: usize,
    hybrid_frontier_len: usize,
    sim_frontier_len: usize,
    frontier_recall: f64,
    rank_fidelity: f64,
    reference_frontier: Frontier,
    report: mim_explore::ExplorationReport,
}

fn main() -> std::io::Result<()> {
    let args = BenchArgs::parse();
    let quick = args.flag("--quick");
    let margin = args.value("--margin", MARGIN);
    let workloads: Vec<_> = mibench::all()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| !quick || i % 4 == 0)
        .map(|(_, w)| w)
        .collect();
    let benchmarks = workloads.len();
    let cache = ProfileCache::new();

    // The hybrid workflow: model scores all 192 points (one profiling
    // pass per benchmark), pruning keeps frontier contenders, simulation
    // verifies only those.
    let hybrid_run = Exploration::new(DesignSpace::paper_table2())
        .title("Figure 10: hybrid Pareto exploration of Table 2")
        .workloads(workloads.iter().cloned())
        .size(WorkloadSize::Small)
        .limit(SWEEP_LIMIT)
        .objectives([Objective::delay(), Objective::energy()])
        .sim_verify(margin)
        .threads(0)
        .with_cache(cache.clone())
        .run()
        .expect("hybrid exploration");
    let hybrid = hybrid_run.hybrid.clone().expect("sim_verify enabled");

    // The reference the hybrid is judged against: the same objectives
    // scored by detailed simulation on every point (sharing the profile
    // cache, so no profiling is repeated).
    let reference = Exploration::new(DesignSpace::paper_table2())
        .title("exhaustive simulation reference")
        .workloads(workloads)
        .size(WorkloadSize::Small)
        .limit(SWEEP_LIMIT)
        .objectives([Objective::delay(), Objective::energy()])
        .evaluator(EvalKind::Sim)
        .threads(0)
        .with_cache(cache)
        .run()
        .expect("exhaustive sim reference");

    let recall = hybrid.frontier.recall_of(&reference.frontier);
    let hybrid_seconds = hybrid_run.timing.search_seconds + hybrid_run.timing.sim_seconds;
    let exhaustive_sim_seconds = reference.timing.search_seconds;

    println!("=== {} ===", hybrid_run.title);
    println!(
        "{benchmarks} benchmarks x {} design points, objectives (delay, energy)",
        hybrid_run.space_points
    );
    println!(
        "model frontier: {} points; pruning at {:.1}% margin kept {} survivors ({:.1}% of the space)",
        hybrid_run.frontier.len(),
        100.0 * margin,
        hybrid.sim_points,
        100.0 * hybrid.sim_fraction,
    );
    println!(
        "sim-verified frontier: {} points; exhaustive sim frontier: {} points",
        hybrid.frontier.len(),
        reference.frontier.len(),
    );
    println!(
        "frontier recall: {:.1}% (target >= 90%)   model-vs-sim rank fidelity (Kendall tau): {:.3}",
        100.0 * recall,
        hybrid.rank_fidelity,
    );
    println!(
        "hybrid cost {hybrid_seconds:.1} s vs exhaustive simulation {exhaustive_sim_seconds:.1} s \
         ({:.1}x cheaper)",
        exhaustive_sim_seconds / hybrid_seconds.max(1e-9),
    );
    println!("\nsim-verified frontier (delay s, energy J):");
    for point in &hybrid.frontier.points {
        let matched = if reference.frontier.contains(point.point_index) {
            "= sim"
        } else {
            "     "
        };
        println!(
            "  [{:>3}] {:<44} {:.4e}  {:.4e}  {matched}",
            point.point_index, point.machine_id, point.scores[0], point.scores[1],
        );
    }

    assert!(
        recall >= 0.90,
        "hybrid frontier recovered only {:.1}% of the exhaustive sim frontier",
        100.0 * recall
    );
    assert!(
        hybrid.sim_fraction < 0.20,
        "hybrid simulated {:.1}% of the space (budget: 20%)",
        100.0 * hybrid.sim_fraction
    );

    write_json(
        "fig10_pareto",
        &ParetoResult {
            benchmarks,
            space_points: hybrid_run.space_points,
            margin,
            sim_points: hybrid.sim_points,
            sim_fraction: hybrid.sim_fraction,
            model_frontier_len: hybrid_run.frontier.len(),
            hybrid_frontier_len: hybrid.frontier.len(),
            sim_frontier_len: reference.frontier.len(),
            frontier_recall: recall,
            rank_fidelity: hybrid.rank_fidelity,
            reference_frontier: reference.frontier,
            report: hybrid_run,
        },
    )?;
    Ok(())
}
