//! Figure 6: model validation on the memory-intensive SPEC-like workloads
//! (the paper reports 4.1% average error, 10.7% maximum).

use mim_bench::write_json;
use mim_runner::{print_comparison, EvalKind, Experiment};
use mim_workloads::{spec, WorkloadSize};

fn main() -> std::io::Result<()> {
    let report = Experiment::new()
        .title("Figure 6: SPEC-like CPI validation (default machine)")
        .workloads(spec::all())
        .size(WorkloadSize::Small)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .run()
        .expect("experiment");
    let rows = report.compare("model", "sim");
    let (avg, max) = print_comparison(&report.title, &rows);
    println!("\npaper reference: avg 4.1%, max 10.7%");
    // Memory intensity sanity: these CPIs must exceed typical MiBench CPIs.
    let mean_cpi = rows.iter().map(|r| r.baseline_cpi).sum::<f64>() / rows.len() as f64;
    assert!(
        mean_cpi > 1.5,
        "SPEC-like suite should be memory-bound, mean CPI {mean_cpi:.2}"
    );
    write_json("fig6_spec", &rows)?;
    assert!(avg < 10.0, "average error regressed: {avg:.2}%");
    let _ = max;
    Ok(())
}
