//! Shared experiment definitions behind the figure binaries.
//!
//! Each function builds exactly the grid its binary reports, so the
//! golden snapshot tests (`tests/golden.rs` at the workspace root) can
//! regenerate a binary's JSON output in-process and assert byte identity
//! against the checked-in snapshot — catching silent numeric drift that
//! unit-level assertions with tolerance bands would miss.

use mim_core::DesignSpace;
use mim_runner::{CpiComparison, EvalKind, Experiment};
use mim_workloads::{mibench, WorkloadSize};
use serde::{Deserialize, Serialize};

use crate::SWEEP_LIMIT;

/// The Figure 3 grid: every MiBench kernel, default machine, model vs
/// detailed simulation. `quick` runs the `Tiny` size (CI smoke / golden
/// snapshot configuration); otherwise `Small`.
pub fn fig3_rows(quick: bool) -> Vec<CpiComparison> {
    let size = if quick {
        WorkloadSize::Tiny
    } else {
        WorkloadSize::Small
    };
    let report = Experiment::new()
        .title("Figure 3: MiBench CPI validation (default machine)")
        .workloads(mibench::all())
        .size(size)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .run()
        .expect("experiment");
    report.compare("model", "sim")
}

/// One benchmark's outcome in the Figure 9 EDP exploration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EdpResult {
    /// Benchmark name.
    pub benchmark: String,
    /// Machine id of the model's EDP-optimal pick.
    pub model_optimum: String,
    /// Machine id of the simulator's EDP-optimal pick.
    pub sim_optimum: String,
    /// True when the model picked the simulator's optimum exactly.
    pub exact_match: bool,
    /// EDP excess of the model's pick over the simulator's optimum, %.
    pub edp_gap_percent: f64,
}

/// The Figure 9 EDP design-space exploration over the Table 2 space.
///
/// `quick` shrinks the run to the golden-snapshot configuration (`Tiny`
/// size, truncated instruction budget, every 4th design point);
/// `all_benchmarks` evaluates the full 19-kernel suite instead of the
/// paper's four plotted benchmarks.
pub fn fig9_results(quick: bool, all_benchmarks: bool) -> Vec<EdpResult> {
    let workloads = if all_benchmarks {
        mibench::all()
    } else {
        vec![
            mibench::adpcm_d(),
            mibench::gsm_c(),
            mibench::lame(),
            mibench::patricia(),
        ]
    };
    let mut experiment = Experiment::new()
        .title("Figure 9: EDP design-space exploration")
        .workloads(workloads)
        .design_space(DesignSpace::paper_table2())
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .energy(true)
        .threads(0);
    experiment = if quick {
        experiment.size(WorkloadSize::Tiny).limit(40_000).stride(4)
    } else {
        experiment.size(WorkloadSize::Small).limit(SWEEP_LIMIT)
    };
    let report = experiment.run().expect("experiment");

    let mut results = Vec::new();
    for benchmark in &report.workloads {
        // The model's EDP landscape picks a configuration...
        let (model_pick, _) = report
            .rows_for("model")
            .filter(|r| &r.workload == benchmark)
            .map(|r| (r.machine_index, r.edp().expect("energy enabled")))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite EDP"))
            .expect("nonempty");
        // ...which is scored by, and compared against, detailed simulation.
        let (sim_pick, best_sim_edp) = report
            .rows_for("sim")
            .filter(|r| &r.workload == benchmark)
            .map(|r| (r.machine_index, r.edp().expect("energy enabled")))
            .min_by(|a, b| a.1.partial_cmp(&b.1).expect("finite EDP"))
            .expect("nonempty");
        let model_pick_sim_edp = report
            .get(benchmark, model_pick, "sim")
            .and_then(|r| r.edp())
            .expect("sim cell at model pick");
        let model_optimum = report.machines[model_pick].clone();
        let sim_optimum = report.machines[sim_pick].clone();
        let gap = 100.0 * (model_pick_sim_edp - best_sim_edp) / best_sim_edp;
        results.push(EdpResult {
            benchmark: benchmark.clone(),
            exact_match: model_optimum == sim_optimum,
            model_optimum,
            sim_optimum,
            edp_gap_percent: gap,
        });
    }
    results
}

/// The Table 2 design-point ids, in enumeration order.
pub fn table2_design_point_ids() -> Vec<String> {
    DesignSpace::paper_table2()
        .points()
        .map(|p| p.machine.id())
        .collect()
}
