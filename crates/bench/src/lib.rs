//! # mim-bench — experiment harness
//!
//! One binary per table/figure of the ISPASS 2012 paper (see DESIGN.md for
//! the experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2` | the architecture design space (Table 2) |
//! | `fig3_validation` | model vs detailed simulation, MiBench, default machine |
//! | `fig4_width_stacks` | CPI stacks vs superscalar width |
//! | `fig5_design_space` | error CDF over the 192-point space + speedup |
//! | `fig6_spec` | validation on memory-intensive SPEC-like workloads |
//! | `fig7_inorder_vs_ooo` | in-order vs out-of-order CPI stacks |
//! | `fig8_compiler_opts` | normalized cycle stacks across compiler options |
//! | `fig9_edp` | EDP design-space exploration, model vs simulation |
//!
//! Each binary prints the table/series the paper reports and writes a JSON
//! record under `results/`. Criterion benches (`cargo bench -p mim-bench`)
//! quantify the §5 claim that model evaluation is orders of magnitude
//! faster than detailed simulation.

#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;

use mim_core::{CpiStack, MachineConfig, MechanisticModel, ModelInputs};
use mim_pipeline::{PipelineSim, SimResult};
use mim_profile::Profiler;
use mim_workloads::{Workload, WorkloadSize};
use serde::Serialize;

/// Instruction budget per workload for design-space sweeps, keeping the
/// 192-point × 19-benchmark detailed-simulation reference tractable.
pub const SWEEP_LIMIT: u64 = 400_000;

/// Where experiment outputs are written.
pub fn results_dir() -> PathBuf {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../results");
    fs::create_dir_all(&dir).expect("create results dir");
    dir
}

/// Serializes `value` as pretty JSON into `results/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let path = results_dir().join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value).expect("serialize");
    fs::write(&path, json).expect("write results");
    eprintln!("[wrote {}]", path.display());
}

/// One benchmark's model-vs-simulation comparison.
#[derive(Debug, Clone, Serialize)]
pub struct ValidationRow {
    pub benchmark: String,
    pub model_cpi: f64,
    pub sim_cpi: f64,
    pub error_percent: f64,
}

/// Runs (profile → model) and detailed simulation on one workload at one
/// design point and returns the comparison row.
pub fn validate_one(
    machine: &MachineConfig,
    workload: &Workload,
    size: WorkloadSize,
) -> ValidationRow {
    let program = workload.program(size);
    let inputs = Profiler::new(machine)
        .profile(&program)
        .expect("profiling failed");
    let stack = MechanisticModel::new(machine).predict(&inputs);
    let sim = PipelineSim::new(machine)
        .simulate(&program)
        .expect("simulation failed");
    row_from(workload.name(), &stack, &sim)
}

/// Builds a comparison row from an already-computed stack and sim result.
pub fn row_from(name: &str, stack: &CpiStack, sim: &SimResult) -> ValidationRow {
    let error_percent = 100.0 * (stack.cpi() - sim.cpi()) / sim.cpi();
    ValidationRow {
        benchmark: name.to_string(),
        model_cpi: stack.cpi(),
        sim_cpi: sim.cpi(),
        error_percent,
    }
}

/// Prints a validation table and returns (average |error|, max |error|).
pub fn print_validation(title: &str, rows: &[ValidationRow]) -> (f64, f64) {
    println!("\n=== {title} ===");
    println!("{:<18} {:>10} {:>10} {:>9}", "benchmark", "model CPI", "sim CPI", "error");
    for r in rows {
        println!(
            "{:<18} {:>10.4} {:>10.4} {:>+8.2}%",
            r.benchmark, r.model_cpi, r.sim_cpi, r.error_percent
        );
    }
    let abs: Vec<f64> = rows.iter().map(|r| r.error_percent.abs()).collect();
    let avg = abs.iter().sum::<f64>() / abs.len() as f64;
    let max = abs.iter().cloned().fold(0.0, f64::max);
    println!("{:<18} avg |error| = {avg:.2}%   max = {max:.2}%", "");
    (avg, max)
}

/// Model inputs for a (possibly truncated) run; truncation must be applied
/// identically to profiling and simulation for comparability.
pub fn profile_limited(
    machine: &MachineConfig,
    program: &mim_isa::Program,
    limit: Option<u64>,
) -> ModelInputs {
    let sweep = mim_profile::SweepProfiler::new(
        machine.hierarchy.clone(),
        vec![machine.hierarchy.l2.clone()],
        vec![machine.predictor.clone()],
    );
    sweep
        .profile(program, limit)
        .expect("profiling failed")
        .inputs_for(0, 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_one_produces_sane_row() {
        let machine = MachineConfig::default_config();
        let w = mim_workloads::mibench::qsort();
        let row = validate_one(&machine, &w, WorkloadSize::Tiny);
        assert_eq!(row.benchmark, "qsort");
        assert!(row.model_cpi > 0.25);
        assert!(row.sim_cpi > 0.25);
        assert!(row.error_percent.abs() < 25.0);
    }

    #[test]
    fn results_dir_is_creatable() {
        let d = results_dir();
        assert!(d.exists());
    }
}
