//! # mim-bench — experiment harness
//!
//! One binary per table/figure of the ISPASS 2012 paper (see DESIGN.md for
//! the experiment index):
//!
//! | binary | reproduces |
//! |---|---|
//! | `table2` | the architecture design space (Table 2) |
//! | `fig3_validation` | model vs detailed simulation, MiBench, default machine |
//! | `fig4_width_stacks` | CPI stacks vs superscalar width |
//! | `fig5_design_space` | error CDF over the 192-point space + speedup |
//! | `fig6_spec` | validation on memory-intensive SPEC-like workloads |
//! | `fig7_inorder_vs_ooo` | in-order vs out-of-order CPI stacks |
//! | `fig8_compiler_opts` | normalized cycle stacks across compiler options |
//! | `fig9_edp` | EDP design-space exploration, model vs simulation |
//! | `fig10_pareto` | Pareto-frontier exploration with the hybrid model→sim workflow (extension of §5–6, built on `mim-explore`) |
//!
//! Every binary is built on the [`mim_runner`] evaluation API: an
//! [`Experiment`](mim_runner::Experiment) declares the (workload ×
//! design-point × evaluator) grid, and the binary post-processes the
//! resulting [`ExperimentReport`](mim_runner::ExperimentReport) into the
//! table/series the paper reports, writing a JSON record under the
//! results directory. Criterion benches (`cargo bench -p mim-bench`)
//! quantify the §5 claim that model evaluation is orders of magnitude
//! faster than detailed simulation, and `sweep_throughput` measures the
//! parallel speedup of `Experiment::threads`.

#![forbid(unsafe_code)]

pub mod cli;
pub mod figures;

use std::fs;
use std::io;
use std::path::PathBuf;

use serde::Serialize;

/// Instruction budget per workload for design-space sweeps, keeping the
/// 192-point × 19-benchmark detailed-simulation reference tractable.
pub const SWEEP_LIMIT: u64 = 400_000;

/// Where experiment outputs are written: `$MIM_RESULTS_DIR` when set,
/// otherwise `results/` at the workspace root.
pub fn results_dir() -> PathBuf {
    match std::env::var_os("MIM_RESULTS_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results"),
    }
}

/// Serializes `value` as pretty JSON into `<results_dir>/<name>.json` and
/// returns the written path.
///
/// # Errors
///
/// Propagates I/O errors from creating the directory or writing the file.
pub fn write_json<T: Serialize + ?Sized>(name: &str, value: &T) -> io::Result<PathBuf> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{name}.json"));
    let json = serde_json::to_string_pretty(value)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    fs::write(&path, json)?;
    eprintln!("[wrote {}]", path.display());
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One test covers the default path, the env override, and the error
    /// path — `MIM_RESULTS_DIR` is process-global state, so splitting
    /// these into separate `#[test]`s would race under the parallel test
    /// harness.
    #[test]
    fn results_dir_override_and_write_json_error_paths() {
        struct RestoreEnv;
        impl Drop for RestoreEnv {
            fn drop(&mut self) {
                std::env::remove_var("MIM_RESULTS_DIR");
            }
        }
        let _restore = RestoreEnv;

        // Default: the workspace-root results directory.
        std::env::remove_var("MIM_RESULTS_DIR");
        assert!(results_dir().ends_with("../../results"));
        // Empty override falls back to the default.
        std::env::set_var("MIM_RESULTS_DIR", "");
        assert!(results_dir().ends_with("../../results"));

        // Override redirects writes.
        let dir = std::env::temp_dir().join(format!("mim-bench-test-{}", std::process::id()));
        std::env::set_var("MIM_RESULTS_DIR", &dir);
        assert_eq!(results_dir(), dir);
        let path = write_json("unit_test", &vec![1u32, 2, 3]).expect("write");
        let text = fs::read_to_string(&path).expect("read back");
        assert!(text.contains('1'));
        fs::remove_dir_all(&dir).ok();

        // I/O failures surface as Err, not panics.
        std::env::set_var("MIM_RESULTS_DIR", "/proc/definitely-not-writable");
        assert!(write_json("unit_test", &vec![1u32]).is_err());
    }
}
