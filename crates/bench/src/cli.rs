//! The shared argument parser for experiment binaries.
//!
//! Every bench bin used to hand-roll the same `std::env::args()` loop for
//! `--quick` / `--full` / `--margin <fraction>`; this module is that loop,
//! once. It is deliberately tiny — flags and valued options only, no
//! subcommands — because that is all a figure-reproduction binary needs.
//!
//! # Example
//!
//! ```
//! use mim_bench::cli::BenchArgs;
//!
//! let args = BenchArgs::from(["prog", "--quick", "--margin", "0.05"]);
//! assert!(args.flag("--quick"));
//! assert!(!args.flag("--full"));
//! assert_eq!(args.value("--margin", 0.02), 0.05);
//! ```

/// Parsed command-line arguments of a bench binary.
#[derive(Debug, Clone)]
pub struct BenchArgs {
    args: Vec<String>,
}

impl BenchArgs {
    /// Parses the process's own arguments.
    pub fn parse() -> BenchArgs {
        BenchArgs {
            args: std::env::args().collect(),
        }
    }

    /// Builds from an explicit argument list (tests, doc examples).
    pub fn from<I, S>(args: I) -> BenchArgs
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        BenchArgs {
            args: args.into_iter().map(Into::into).collect(),
        }
    }

    /// True when the flag (e.g. `"--quick"`) is present.
    pub fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }

    /// The parsed value following `name` (e.g. `--margin 0.02`), or
    /// `default` when the option is absent.
    ///
    /// # Panics
    ///
    /// Panics with a usage message if the option is present without a
    /// parsable value — a bench binary wants loud arg mistakes, not
    /// silently-defaulted ones.
    pub fn value<T: std::str::FromStr>(&self, name: &str, default: T) -> T {
        match self.args.iter().position(|a| a == name) {
            None => default,
            Some(i) => self
                .args
                .get(i + 1)
                .unwrap_or_else(|| panic!("{name} requires a value, e.g. {name} 0.02"))
                .parse()
                .unwrap_or_else(|_| panic!("{name} takes a number, e.g. {name} 0.02")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_and_values_parse() {
        let args = BenchArgs::from(["bin", "--quick", "--margin", "0.1", "--probes", "3"]);
        assert!(args.flag("--quick"));
        assert!(!args.flag("--verbose"));
        assert_eq!(args.value("--margin", 0.02), 0.1);
        assert_eq!(args.value::<usize>("--probes", 1), 3);
        assert_eq!(args.value("--absent", 7u32), 7);
    }

    #[test]
    #[should_panic(expected = "requires a value")]
    fn trailing_option_without_value_panics() {
        BenchArgs::from(["bin", "--margin"]).value("--margin", 0.02);
    }

    #[test]
    #[should_panic(expected = "takes a number")]
    fn unparsable_value_panics() {
        BenchArgs::from(["bin", "--margin", "fast"]).value("--margin", 0.02);
    }
}
