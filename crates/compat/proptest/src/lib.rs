//! Offline stand-in for `proptest`, covering the subset this workspace's
//! property tests use: range and tuple strategies, `Just`, `prop_map`,
//! weighted `prop_oneof!`, `collection::vec`, the `proptest!` macro, and
//! `prop_assert!`/`prop_assert_eq!`.
//!
//! Sampling is deterministic (a fixed-seed SplitMix64 stream keyed by the
//! test name), so failures reproduce run-to-run. There is no shrinking: a
//! failing case reports the generated inputs via `Debug` instead.

use std::fmt;
use std::ops::Range;

/// Error signalled by `prop_assert!` macros inside a test case.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Runs each property `cases` times.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 32 }
    }
}

pub mod test_runner {
    //! The deterministic random stream driving sampling.

    /// SplitMix64: tiny, high-quality, and deterministic.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream.
        pub fn seed(seed: u64) -> TestRng {
            TestRng {
                state: seed ^ 0x9e37_79b9_7f4a_7c15,
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform value in `[0, bound)`; `bound` must be nonzero.
        pub fn below(&mut self, bound: u64) -> u64 {
            self.next_u64() % bound
        }
    }

    /// Hashes a test name into a seed (FNV-1a).
    pub fn seed_from_name(name: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

use test_runner::TestRng;

/// A value generator. Object-safe: combinators require `Self: Sized`.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O: fmt::Debug, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Boxes the strategy (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn sample(&self, rng: &mut TestRng) -> S::Value {
        (**self).sample(rng)
    }
}

/// Always produces a clone of its value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone + fmt::Debug>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// `prop_map` adapter.
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O: fmt::Debug, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn sample(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.sample(rng))
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct Union<T> {
    choices: Vec<(u32, BoxedStrategy<T>)>,
    total_weight: u64,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union from `(weight, strategy)` pairs.
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty or all weights are zero.
    pub fn new(choices: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
        let total_weight: u64 = choices.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(
            total_weight > 0,
            "prop_oneof! needs a positive total weight"
        );
        Union {
            choices,
            total_weight,
        }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        let mut roll = rng.below(self.total_weight);
        for (weight, strategy) in &self.choices {
            let weight = u64::from(*weight);
            if roll < weight {
                return strategy.sample(rng);
            }
            roll -= weight;
        }
        unreachable!("weights summed correctly")
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_tuple_strategy {
    ($(($($n:tt $s:ident),+)),+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$n.sample(rng),)+)
            }
        }
    )+};
}
impl_tuple_strategy!(
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E),
    (0 A, 1 B, 2 C, 3 D, 4 E, 5 F)
);

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Generates vectors whose length falls in `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.len.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude::*`.
    /// Re-export so `proptest::collection::vec` resolves through the
    /// prelude too.
    pub use crate as proptest;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Weighted choice between strategies: `prop_oneof![s1, s2]` or
/// `prop_oneof![3 => s1, 1 => s2]`.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:literal => $strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $(($weight as u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![
            $((1u32, $crate::Strategy::boxed($strategy))),+
        ])
    };
}

/// Asserts inside a proptest body, failing the case (not panicking
/// directly) so the harness can report the generated inputs.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Equality assertion inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let left = $left;
        let right = $right;
        if left != right {
            return Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                left,
                right
            )));
        }
    }};
}

/// Declares property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` sampled cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest! { @with_config ($config) $($rest)* }
    };
    (@with_config ($config:expr)
        $($(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block)*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_runner::TestRng::seed(
                    $crate::test_runner::seed_from_name(stringify!($name)),
                );
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::sample(&($strategy), &mut rng);)*
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?} ",)*),
                        $(&$arg),*
                    );
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body Ok(()) })();
                    if let Err(e) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), case + 1, config.cases, e, inputs,
                        );
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest! { @with_config ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::test_runner::TestRng::seed(1);
        for _ in 0..1000 {
            let v = (3u8..17).sample(&mut rng);
            assert!((3..17).contains(&v));
            let i = (-5i32..6).sample(&mut rng);
            assert!((-5..6).contains(&i));
        }
    }

    #[test]
    fn sampling_is_deterministic() {
        let draw = || {
            let mut rng = crate::test_runner::TestRng::seed(42);
            crate::collection::vec(0u64..100, 5..6).sample(&mut rng)
        };
        assert_eq!(draw(), draw());
    }

    #[test]
    fn oneof_respects_zero_weightless_choices() {
        let mut rng = crate::test_runner::TestRng::seed(7);
        let s = prop_oneof![2 => Just(1u8), 1 => Just(2u8)];
        let mut saw = [false; 3];
        for _ in 0..200 {
            saw[s.sample(&mut rng) as usize] = true;
        }
        assert!(saw[1] && saw[2]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn macro_compiles_and_runs(xs in proptest::collection::vec(0u32..10, 1..20), y in 1u8..3) {
            prop_assert!(!xs.is_empty());
            prop_assert!((1..3).contains(&y), "y out of range: {}", y);
            prop_assert_eq!(xs.len(), xs.len());
        }
    }
}
