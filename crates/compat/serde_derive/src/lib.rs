//! Derive macros for the offline `serde` stand-in.
//!
//! Hand-rolled over `proc_macro::TokenStream` (no `syn`/`quote` available
//! offline). Supports the shapes this workspace actually derives:
//!
//! * named-field structs (any field visibility, `#[serde(skip)]` honored);
//! * enums with unit variants (serialized as the variant-name string);
//! * enums with struct or tuple variants (serialized as
//!   `{"Variant": {...}}` / `{"Variant": [...]}`).
//!
//! Generics are not supported — none of the workspace types need them.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct-variant.
struct Field {
    name: String,
    skip: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(usize),
    Struct(Vec<Field>),
}

/// Parsed item: its name and shape.
enum Item {
    Struct(String, Vec<Field>),
    Enum(String, Vec<Variant>),
}

/// Returns true if this attribute group body marks `#[serde(skip)]`.
fn is_serde_skip(tokens: &[TokenTree]) -> bool {
    // Attribute body is e.g. `serde ( skip )`.
    match tokens {
        [TokenTree::Ident(name), TokenTree::Group(args)] if name.to_string() == "serde" => args
            .stream()
            .into_iter()
            .any(|t| matches!(&t, TokenTree::Ident(i) if i.to_string() == "skip")),
        _ => false,
    }
}

/// Consumes a leading attribute sequence, returning whether any was
/// `#[serde(skip)]`.
fn take_attrs(tokens: &[TokenTree], pos: &mut usize) -> bool {
    let mut skip = false;
    while *pos + 1 < tokens.len() {
        let is_pound = matches!(&tokens[*pos], TokenTree::Punct(p) if p.as_char() == '#');
        if !is_pound {
            break;
        }
        if let TokenTree::Group(g) = &tokens[*pos + 1] {
            if g.delimiter() == Delimiter::Bracket {
                let body: Vec<TokenTree> = g.stream().into_iter().collect();
                skip |= is_serde_skip(&body);
                *pos += 2;
                continue;
            }
        }
        break;
    }
    skip
}

/// Consumes an optional `pub` / `pub(...)` visibility.
fn take_visibility(tokens: &[TokenTree], pos: &mut usize) {
    if matches!(&tokens.get(*pos), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
        *pos += 1;
        if matches!(&tokens.get(*pos), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            *pos += 1;
        }
    }
}

/// Parses the comma-separated named fields inside a brace group.
fn parse_named_fields(group: &proc_macro::Group) -> Vec<Field> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut fields = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        let skip = take_attrs(&tokens, &mut pos);
        take_visibility(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde derive: expected field name, found {other}"),
        };
        pos += 1;
        // Skip `: Type` up to the next top-level comma. Generic angle
        // brackets contain no commas at token-tree depth 0 issues because
        // `<` `>` are puncts; track their nesting explicitly.
        let mut angle_depth = 0i32;
        while pos < tokens.len() {
            match &tokens[pos] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    pos += 1;
                    break;
                }
                _ => {}
            }
            pos += 1;
        }
        fields.push(Field { name, skip });
    }
    fields
}

/// Counts the fields of a tuple-variant parenthesis group.
fn count_tuple_fields(group: &proc_macro::Group) -> usize {
    let mut count = 0;
    let mut saw_any = false;
    let mut angle_depth = 0i32;
    for t in group.stream() {
        saw_any = true;
        match &t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    if saw_any {
        count + 1
    } else {
        0
    }
}

/// Parses the enum body (brace group of variants).
fn parse_variants(group: &proc_macro::Group) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = group.stream().into_iter().collect();
    let mut variants = Vec::new();
    let mut pos = 0;
    while pos < tokens.len() {
        take_attrs(&tokens, &mut pos);
        let name = match &tokens[pos] {
            TokenTree::Ident(i) => i.to_string(),
            other => panic!("serde derive: expected variant name, found {other}"),
        };
        pos += 1;
        let kind = match tokens.get(pos) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                pos += 1;
                VariantKind::Struct(parse_named_fields(g))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                pos += 1;
                VariantKind::Tuple(count_tuple_fields(g))
            }
            _ => VariantKind::Unit,
        };
        // Skip an optional discriminant and the trailing comma.
        while pos < tokens.len() {
            if matches!(&tokens[pos], TokenTree::Punct(p) if p.as_char() == ',') {
                pos += 1;
                break;
            }
            pos += 1;
        }
        variants.push(Variant { name, kind });
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut pos = 0;
    take_attrs(&tokens, &mut pos);
    take_visibility(&tokens, &mut pos);
    let keyword = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde derive: expected `struct` or `enum`, found {other}"),
    };
    pos += 1;
    let name = match &tokens[pos] {
        TokenTree::Ident(i) => i.to_string(),
        other => panic!("serde derive: expected item name, found {other}"),
    };
    pos += 1;
    if matches!(&tokens.get(pos), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde derive: generic types are not supported by the offline shim");
    }
    let body = match &tokens.get(pos) {
        Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => g,
        _ => panic!("serde derive: only brace-bodied structs and enums are supported"),
    };
    match keyword.as_str() {
        "struct" => Item::Struct(name, parse_named_fields(body)),
        "enum" => Item::Enum(name, parse_variants(body)),
        other => panic!("serde derive: cannot derive for `{other}` items"),
    }
}

fn tuple_binders(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("__f{i}")).collect()
}

/// `#[derive(Serialize)]` — implements `serde::Serialize` by building a
/// `serde::Value` tree.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct(name, fields) => {
            let mut pushes = String::new();
            for f in fields.iter().filter(|f| !f.skip) {
                pushes.push_str(&format!(
                    "__fields.push((\"{n}\".to_string(), serde::Serialize::to_value(&self.{n})));\n",
                    n = f.name
                ));
            }
            format!(
                "#[allow(unused_mut, unused_variables)]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         let mut __fields: Vec<(String, serde::Value)> = Vec::new();\n\
                         {pushes}\
                         serde::Value::Object(__fields)\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut arms = String::new();
            for v in &variants {
                match &v.kind {
                    VariantKind::Unit => arms.push_str(&format!(
                        "{name}::{v} => serde::Value::Str(\"{v}\".to_string()),\n",
                        v = v.name
                    )),
                    VariantKind::Tuple(n) => {
                        let binders = tuple_binders(*n);
                        let pat = binders.join(", ");
                        let items = binders
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{v}({pat}) => serde::Value::Object(vec![(\
                                 \"{v}\".to_string(), serde::Value::Array(vec![{items}]))]),\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let pat = fields
                            .iter()
                            .map(|f| f.name.clone())
                            .collect::<Vec<_>>()
                            .join(", ");
                        let items = fields
                            .iter()
                            .filter(|f| !f.skip)
                            .map(|f| {
                                format!(
                                    "(\"{n}\".to_string(), serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        arms.push_str(&format!(
                            "{name}::{v} {{ {pat} }} => serde::Value::Object(vec![(\
                                 \"{v}\".to_string(), serde::Value::Object(vec![{items}]))]),\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "#[allow(unused_mut, unused_variables)]\n\
                 impl serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> serde::Value {{\n\
                         match self {{\n{arms}\n}}\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde derive: generated code must parse")
}

/// `#[derive(Deserialize)]` — implements `serde::Deserialize` by reading a
/// `serde::Value` tree.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let out = match parse_item(input) {
        Item::Struct(name, fields) => {
            let inits = fields
                .iter()
                .map(|f| {
                    if f.skip {
                        format!("{}: ::core::default::Default::default()", f.name)
                    } else {
                        format!("{n}: serde::de_field(__fields, \"{n}\")?", n = f.name)
                    }
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "#[allow(unused_mut, unused_variables)]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         let __fields = __value.as_object().ok_or_else(|| \
                             serde::DeError::expected(\"object\", __value))?;\n\
                         Ok({name} {{\n{inits}\n}})\n\
                     }}\n\
                 }}"
            )
        }
        Item::Enum(name, variants) => {
            let mut unit_arms = String::new();
            let mut keyed_arms = String::new();
            for v in &variants {
                match &v.kind {
                    VariantKind::Unit => unit_arms
                        .push_str(&format!("\"{v}\" => return Ok({name}::{v}),\n", v = v.name)),
                    VariantKind::Tuple(n) => {
                        let gets = (0..*n)
                            .map(|i| {
                                format!(
                                    "serde::Deserialize::from_value(__items.get({i}).ok_or_else(|| \
                                         serde::DeError::new(\"missing tuple element\"))?)?"
                                )
                            })
                            .collect::<Vec<_>>()
                            .join(", ");
                        keyed_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let __items = __inner.as_array().ok_or_else(|| \
                                     serde::DeError::expected(\"array\", __inner))?;\n\
                                 return Ok({name}::{v}({gets}));\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                    VariantKind::Struct(fields) => {
                        let inits = fields
                            .iter()
                            .map(|f| {
                                if f.skip {
                                    format!("{}: ::core::default::Default::default()", f.name)
                                } else {
                                    format!("{n}: serde::de_field(__vfields, \"{n}\")?", n = f.name)
                                }
                            })
                            .collect::<Vec<_>>()
                            .join(",\n");
                        keyed_arms.push_str(&format!(
                            "\"{v}\" => {{\n\
                                 let __vfields = __inner.as_object().ok_or_else(|| \
                                     serde::DeError::expected(\"object\", __inner))?;\n\
                                 return Ok({name}::{v} {{\n{inits}\n}});\n\
                             }}\n",
                            v = v.name
                        ));
                    }
                }
            }
            format!(
                "#[allow(unused_mut, unused_variables)]\n\
                 impl serde::Deserialize for {name} {{\n\
                     fn from_value(__value: &serde::Value) -> Result<Self, serde::DeError> {{\n\
                         if let serde::Value::Str(__s) = __value {{\n\
                             match __s.as_str() {{\n{unit_arms}\n_ => {{}}\n}}\n\
                         }}\n\
                         if let Some(__fields) = __value.as_object() {{\n\
                             if let Some((__key, __inner)) = __fields.first() {{\n\
                                 match __key.as_str() {{\n{keyed_arms}\n_ => {{}}\n}}\n\
                             }}\n\
                         }}\n\
                         Err(serde::DeError::new(format!(\n\
                             \"no variant of {name} matches {{:?}}\", __value)))\n\
                     }}\n\
                 }}"
            )
        }
    };
    out.parse()
        .expect("serde derive: generated code must parse")
}
