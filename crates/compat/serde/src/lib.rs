//! Offline stand-in for `serde`, providing the subset this workspace uses.
//!
//! The build environment has no access to crates.io, so the workspace
//! vendors a minimal, API-compatible serialization framework: a
//! self-describing [`Value`] tree, [`Serialize`]/[`Deserialize`] traits
//! converting to and from it, and derive macros (see `serde_derive`)
//! handling named-field structs and enums. Field order is preserved, so
//! serialization is fully deterministic.
//!
//! Supported derive attributes: `#[serde(skip)]` on a named struct field
//! (omitted when serializing, `Default::default()` when deserializing).

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A self-describing JSON-like value tree.
///
/// Objects preserve insertion order (fields serialize in declaration
/// order), which keeps report bytes deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer (used when the value exceeds `i64::MAX` or the
    /// source type is unsigned).
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// String.
    Str(String),
    /// Ordered array.
    Array(Vec<Value>),
    /// Ordered key-value map.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Returns the object fields if this value is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// Returns the elements if this value is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }

    /// Looks up a field of an object by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// A short description of the value's type, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// Error produced when a [`Value`] cannot be converted into the requested
/// type.
#[derive(Debug, Clone, PartialEq)]
pub struct DeError {
    message: String,
}

impl DeError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> DeError {
        DeError {
            message: message.into(),
        }
    }

    /// Convenience constructor for type mismatches.
    pub fn expected(what: &str, got: &Value) -> DeError {
        DeError::new(format!("expected {what}, got {}", got.kind()))
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for DeError {}

/// Serialization into the [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a [`Value`].
    fn to_value(&self) -> Value;
}

/// Deserialization out of the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a [`Value`].
    ///
    /// # Errors
    ///
    /// Returns a [`DeError`] if the value's shape does not match.
    fn from_value(value: &Value) -> Result<Self, DeError>;
}

/// Looks up and deserializes a struct field; used by the derive macro.
///
/// # Errors
///
/// Returns a [`DeError`] if the field is missing or has the wrong shape.
pub fn de_field<T: Deserialize>(fields: &[(String, Value)], key: &str) -> Result<T, DeError> {
    match fields.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v).map_err(|e| DeError::new(format!("field `{key}`: {e}"))),
        None => Err(DeError::new(format!("missing field `{key}`"))),
    }
}

// ---------------------------------------------------------------------------
// Serialize implementations
// ---------------------------------------------------------------------------

macro_rules! impl_ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::UInt(*self as u64)
            }
        }
    )*};
}
impl_ser_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
    )*};
}
impl_ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

macro_rules! impl_ser_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
    )+};
}
impl_ser_tuple!(
    (0 A),
    (0 A, 1 B),
    (0 A, 1 B, 2 C),
    (0 A, 1 B, 2 C, 3 D),
    (0 A, 1 B, 2 C, 3 D, 4 E)
);

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

// ---------------------------------------------------------------------------
// Deserialize implementations
// ---------------------------------------------------------------------------

fn value_as_i128(value: &Value) -> Option<i128> {
    match *value {
        Value::Int(i) => Some(i128::from(i)),
        Value::UInt(u) => Some(i128::from(u)),
        Value::Float(f) if f.fract() == 0.0 && f.abs() < 9.0e18 => Some(f as i128),
        _ => None,
    }
}

macro_rules! impl_de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let n = value_as_i128(value)
                    .ok_or_else(|| DeError::expected("integer", value))?;
                <$t>::try_from(n)
                    .map_err(|_| DeError::new(format!("integer {n} out of range")))
            }
        }
    )*};
}
impl_de_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Float(f) => Ok(f),
            Value::Int(i) => Ok(i as f64),
            Value::UInt(u) => Ok(u as f64),
            _ => Err(DeError::expected("number", value)),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        f64::from_value(value).map(|f| f as f32)
    }
}

impl Deserialize for bool {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match *value {
            Value::Bool(b) => Ok(b),
            _ => Err(DeError::expected("bool", value)),
        }
    }
}

impl Deserialize for String {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(DeError::expected("string", value)),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        match value {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        value
            .as_array()
            .ok_or_else(|| DeError::expected("array", value))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_de_tuple {
    ($(($len:expr; $($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(value: &Value) -> Result<Self, DeError> {
                let items = value
                    .as_array()
                    .ok_or_else(|| DeError::expected("array", value))?;
                if items.len() != $len {
                    return Err(DeError::new(format!(
                        "expected array of length {}, got {}",
                        $len,
                        items.len()
                    )));
                }
                Ok(($($t::from_value(&items[$n])?,)+))
            }
        }
    )+};
}
impl_de_tuple!(
    (1; 0 A),
    (2; 0 A, 1 B),
    (3; 0 A, 1 B, 2 C),
    (4; 0 A, 1 B, 2 C, 3 D),
    (5; 0 A, 1 B, 2 C, 3 D, 4 E)
);

impl Deserialize for Value {
    fn from_value(value: &Value) -> Result<Self, DeError> {
        Ok(value.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_value()).unwrap(),
            "hi".to_string()
        );
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![(1u32, 2.5f64), (3, 4.5)];
        let round: Vec<(u32, f64)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(v, round);
        let o: Option<u8> = None;
        assert_eq!(o.to_value(), Value::Null);
        assert_eq!(Option::<u8>::from_value(&Value::Null).unwrap(), None);
    }

    #[test]
    fn mismatch_reports_kinds() {
        let err = bool::from_value(&Value::Str("x".into())).unwrap_err();
        assert!(err.to_string().contains("bool"));
    }
}
