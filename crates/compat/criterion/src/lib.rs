//! Offline stand-in for `criterion`: a small wall-clock benchmarking
//! harness exposing the API surface this workspace's benches use
//! (`bench_function`, `benchmark_group`, `bench_with_input`, `Throughput`,
//! `BenchmarkId`, `criterion_group!`, `criterion_main!`).
//!
//! Each benchmark is auto-calibrated to a target measurement time, then
//! reported as median time per iteration (plus throughput when
//! configured). No statistics beyond min/median/max — the goal is honest
//! relative numbers without crates.io access.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A two-part benchmark identifier, `function/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter display value.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Passed to the closure given to `iter`; times the inner function.
pub struct Bencher {
    samples: Vec<Duration>,
    target: Duration,
}

impl Bencher {
    /// Runs `f` repeatedly, recording per-iteration wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm up and estimate cost with a single run.
        let t0 = Instant::now();
        black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(1));

        // Aim for ~SAMPLES samples within the target time.
        const SAMPLES: usize = 15;
        let per_sample = self.target / SAMPLES as u32;
        let iters_per_sample = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        self.samples.clear();
        for _ in 0..SAMPLES {
            let t = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            self.samples.push(t.elapsed() / iters_per_sample);
        }
        self.samples.sort();
    }

    fn median(&self) -> Duration {
        self.samples
            .get(self.samples.len() / 2)
            .copied()
            .unwrap_or_default()
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

fn report(name: &str, bencher: &Bencher, throughput: Option<Throughput>) {
    let median = bencher.median();
    let low = bencher.samples.first().copied().unwrap_or_default();
    let high = bencher.samples.last().copied().unwrap_or_default();
    let mut line = format!(
        "{name:<48} time: [{} {} {}]",
        format_duration(low),
        format_duration(median),
        format_duration(high)
    );
    if let Some(tp) = throughput {
        let seconds = median.as_secs_f64().max(1e-12);
        let rate = match tp {
            Throughput::Elements(n) => format!("{:.3} Melem/s", n as f64 / seconds / 1e6),
            Throughput::Bytes(n) => format!("{:.3} MiB/s", n as f64 / seconds / (1 << 20) as f64),
        };
        line.push_str(&format!("  thrpt: {rate}"));
    }
    println!("{line}");
}

/// The benchmark manager handed to `criterion_group!` functions.
pub struct Criterion {
    measurement_time: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            measurement_time: Duration::from_millis(900),
            sample_size: 15,
        }
    }
}

impl Criterion {
    /// Sets the target measurement time per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Criterion {
        self.measurement_time = t;
        self
    }

    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: impl fmt::Display,
        mut f: F,
    ) -> &mut Criterion {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target: self.measurement_time,
        };
        f(&mut bencher);
        report(&name.to_string(), &bencher, None);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Annotates subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of samples (accepted for API parity).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    /// Sets the target measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl fmt::Display,
        mut f: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            samples: Vec::new(),
            target: self.criterion.measurement_time,
        };
        f(&mut bencher);
        report(&format!("{}/{}", self.name, id), &bencher, self.throughput);
        self
    }

    /// Runs one benchmark that borrows an input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (no-op; exists for API parity).
    pub fn finish(&mut self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($function:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($function(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default().measurement_time(Duration::from_millis(20));
        c.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        let mut group = c.benchmark_group("group");
        group.throughput(Throughput::Elements(10));
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("in", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
    }
}
