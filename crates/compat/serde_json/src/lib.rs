//! Offline stand-in for `serde_json`: serializes the `serde` shim's
//! [`Value`] tree to JSON text and parses JSON text back.
//!
//! Output is deterministic: object fields keep declaration order, floats
//! use Rust's shortest round-trip formatting, and pretty output indents
//! with two spaces.

use std::fmt;

use serde::{DeError, Deserialize, Serialize, Value};

/// Error produced by JSON serialization or parsing.
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Error {
        Error {
            message: message.into(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.to_string())
    }
}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------------

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_float(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f}");
        out.push_str(&s);
        // Keep the float/integer distinction through a round trip.
        if !s.contains('.') && !s.contains('e') && !s.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; emit null like serde_json's lossy modes.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => escape_into(out, s),
        Value::Array(items) => {
            write_seq(out, ('[', ']'), items.iter(), indent, |out, item, ind| {
                write_value(out, item, ind)
            })
        }
        Value::Object(fields) => write_seq(
            out,
            ('{', '}'),
            fields.iter(),
            indent,
            |out, (k, v), ind| {
                escape_into(out, k);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, v, ind);
            },
        ),
    }
}

fn write_seq<T>(
    out: &mut String,
    (open, close): (char, char),
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    mut write_item: impl FnMut(&mut String, T, Option<usize>),
) {
    out.push(open);
    let len = items.len();
    if len == 0 {
        out.push(close);
        return;
    }
    let inner = indent.map(|i| i + 1);
    for (i, item) in items.enumerate() {
        if let Some(level) = inner {
            out.push('\n');
            out.push_str(&"  ".repeat(level));
        }
        write_item(out, item, inner);
        if i + 1 < len {
            out.push(',');
        }
    }
    if let Some(level) = indent {
        out.push('\n');
        out.push_str(&"  ".repeat(level));
    }
    out.push(close);
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes `value` as pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

/// Serializes `value` into the shim's [`Value`] tree.
///
/// # Errors
///
/// Infallible for the shim's value model; kept fallible for API parity.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value> {
    Ok(value.to_value())
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn new(text: &'a str) -> Parser<'a> {
        Parser {
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn error(&self, message: impl Into<String>) -> Error {
        Error::new(format!("{} at byte {}", message.into(), self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected `{}`", b as char)))
        }
    }

    fn consume_keyword(&mut self, word: &str) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek().ok_or_else(|| self.error("unexpected end"))? {
            b'n' => {
                if self.consume_keyword("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b't' => {
                if self.consume_keyword("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b'f' => {
                if self.consume_keyword("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.error("invalid literal"))
                }
            }
            b'"' => self.parse_string().map(Value::Str),
            b'[' => {
                self.pos += 1;
                let mut items = Vec::new();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(self.error("expected `,` or `]`")),
                    }
                }
            }
            b'{' => {
                self.pos += 1;
                let mut fields = Vec::new();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.expect(b':')?;
                    let value = self.parse_value()?;
                    fields.push((key, value));
                    match self.peek() {
                        Some(b',') => self.pos += 1,
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(fields));
                        }
                        _ => return Err(self.error("expected `,` or `}`")),
                    }
                }
            }
            _ => self.parse_number(),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| self.error("unterminated string"))?;
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| self.error("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.error("truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| self.error("invalid \\u escape"))?,
                                16,
                            )
                            .map_err(|_| self.error("invalid \\u escape"))?;
                            self.pos += 4;
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| self.error("invalid code point"))?,
                            );
                        }
                        _ => return Err(self.error("unknown escape")),
                    }
                }
                _ => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid UTF-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        self.skip_ws();
        let start = self.pos;
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.error("invalid number"))?;
        if text.is_empty() {
            return Err(self.error("expected a value"));
        }
        if !text.contains('.') && !text.contains('e') && !text.contains('E') {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.error(format!("invalid number `{text}`")))
    }
}

/// Parses JSON text into a `T`.
///
/// # Errors
///
/// Returns an [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T> {
    let mut parser = Parser::new(text);
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(parser.error("trailing characters"));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_round_trip() {
        let v: Vec<(u32, f64)> = vec![(90, 3.25), (99, 0.5)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[90,3.25],[99,0.5]]");
        let round: Vec<(u32, f64)> = from_str(&json).unwrap();
        assert_eq!(v, round);
    }

    #[test]
    fn floats_stay_floats() {
        let json = to_string(&2.0f64).unwrap();
        assert_eq!(json, "2.0");
        let round: f64 = from_str(&json).unwrap();
        assert_eq!(round, 2.0);
    }

    #[test]
    fn pretty_output_is_indented() {
        let v = Value::Object(vec![
            ("a".to_string(), Value::Int(1)),
            ("b".to_string(), Value::Array(vec![Value::Bool(true)])),
        ]);
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
        let round: Value = from_str(&json).unwrap();
        assert_eq!(v, round);
    }

    #[test]
    fn strings_escape() {
        let s = "line\n\"quoted\"\\x".to_string();
        let round: String = from_str(&to_string(&s).unwrap()).unwrap();
        assert_eq!(s, round);
    }

    #[test]
    fn errors_carry_position() {
        let err = from_str::<bool>("troo").unwrap_err();
        assert!(err.to_string().contains("byte"));
    }
}
