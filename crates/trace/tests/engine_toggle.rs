//! End-to-end check of the `MIM_BLOCK_ENGINE=off` override: the toggle
//! must route every consumer back onto the per-step interpreter, and the
//! recorded payload must be byte-identical either way.
//!
//! This lives in its own integration-test binary (one `#[test]`) because
//! the override is process-global and latched from the environment on
//! first query — sharing a binary with other tests would race that
//! latch.

use mim_isa::{block_engine_enabled, set_block_engine};
use mim_trace::{LiveVm, Trace, TraceSource};
use mim_workloads::{mibench, WorkloadSize};

#[test]
fn off_override_forces_interpreter_with_identical_payload() {
    // Latch the environment before anything queries the toggle.
    std::env::set_var("MIM_BLOCK_ENGINE", "off");
    assert!(
        !block_engine_enabled(),
        "MIM_BLOCK_ENGINE=off must disable the block engine"
    );

    let p = mibench::sha().program(WorkloadSize::Tiny);

    // Interpreter-backed recording and live stream (engine off).
    let trace_off = Trace::record(&p, None).unwrap();
    let mut events_off = 0u64;
    let outcome_off = LiveVm::new(&p).drive(&mut |_| events_off += 1).unwrap();

    // Flip the engine back on at runtime (overrides the env latch) and
    // repeat: the payload bytes and the stream shape must not change.
    set_block_engine(true);
    assert!(block_engine_enabled());
    let trace_on = Trace::record(&p, None).unwrap();
    let mut events_on = 0u64;
    let outcome_on = LiveVm::new(&p).drive(&mut |_| events_on += 1).unwrap();

    assert_eq!(
        trace_off.to_bytes(),
        trace_on.to_bytes(),
        "recorded payload must be byte-identical across backends"
    );
    assert_eq!(events_off, events_on);
    assert_eq!(outcome_off, outcome_on);

    // Restore the env-selected state for hygiene (still this process).
    set_block_engine(false);
    assert!(!block_engine_enabled());
}
