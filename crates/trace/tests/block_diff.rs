//! Differential property tests: the block-compiled engine versus the
//! per-step interpreter over random synthetic programs.
//!
//! Random [`SyntheticRecipe`]s cover the generator's whole behavior space
//! (mix, dependency distances, branch predictability, addressing
//! patterns), each run under a random instruction limit so the limit
//! edge cases — zero, mid-block, exactly-exhausted, beyond-the-end — are
//! exercised too. The offline proptest stand-in does not shrink, so a
//! failing case is re-minimized by a greedy recipe shrinker before the
//! test reports it.

use mim_isa::{BlockEngine, Program, Reg, RunOutcome, TraceEvent, Vm, VmError};
use mim_trace::Trace;
use mim_workloads::synth::SyntheticRecipe;
use proptest::prelude::*;

/// Everything observable about one functional run: the outcome, the full
/// event stream, and the final architectural state.
#[derive(Debug, Clone, PartialEq)]
struct RunState {
    result: Result<RunOutcome, VmError>,
    events: Vec<TraceEvent>,
    regs: Vec<i64>,
    mem: Vec<i64>,
    pc: u32,
    halted: bool,
    retired: u64,
}

fn interp_run(p: &Program, limit: Option<u64>) -> RunState {
    let mut vm = Vm::new(p);
    let mut events = Vec::new();
    let result = vm.run_with(limit, |ev| events.push(*ev));
    RunState {
        result,
        events,
        regs: (0..32)
            .map(|i| vm.reg(Reg::from_index(i).unwrap()))
            .collect(),
        mem: vm.memory().to_vec(),
        pc: vm.pc(),
        halted: vm.is_halted(),
        retired: vm.retired(),
    }
}

fn block_run(p: &Program, limit: Option<u64>) -> RunState {
    let mut engine = BlockEngine::new(p);
    let mut events = Vec::new();
    let result = engine.run_with(limit, |ev| events.push(*ev));
    RunState {
        result,
        events,
        regs: (0..32)
            .map(|i| engine.reg(Reg::from_index(i).unwrap()))
            .collect(),
        mem: engine.memory().to_vec(),
        pc: engine.pc(),
        halted: engine.is_halted(),
        retired: engine.retired(),
    }
}

/// Compares the two backends on one `(program, limit)` point, returning a
/// description of the first divergence.
fn mismatch(p: &Program, limit: Option<u64>) -> Option<String> {
    let a = interp_run(p, limit);
    let b = block_run(p, limit);
    if a == b {
        return None;
    }
    if a.result != b.result {
        return Some(format!("outcome {:?} vs {:?}", a.result, b.result));
    }
    if a.events != b.events {
        let i = a
            .events
            .iter()
            .zip(&b.events)
            .position(|(x, y)| x != y)
            .unwrap_or(a.events.len().min(b.events.len()));
        return Some(format!(
            "event streams diverge at index {i} (lens {} vs {}): {:?} vs {:?}",
            a.events.len(),
            b.events.len(),
            a.events.get(i),
            b.events.get(i)
        ));
    }
    Some(format!(
        "final state: regs match={} mem match={} pc {} vs {} halted {} vs {} retired {} vs {}",
        a.regs == b.regs,
        a.mem == b.mem,
        a.pc,
        b.pc,
        a.halted,
        b.halted,
        a.retired,
        b.retired
    ))
}

/// Greedy shrinker: repeatedly applies the first recipe/limit reduction
/// that keeps the case failing, until none does. Returns the minimized
/// case and its divergence.
fn shrink(
    mut recipe: SyntheticRecipe,
    mut limit: Option<u64>,
    mut why: String,
) -> (SyntheticRecipe, Option<u64>, String) {
    let still_failing =
        |r: &SyntheticRecipe, l: Option<u64>| -> Option<String> { mismatch(&r.generate(), l) };
    loop {
        let mut reduced = false;
        let mut candidates: Vec<(SyntheticRecipe, Option<u64>)> = Vec::new();
        if recipe.iterations > 1 {
            candidates.push((
                SyntheticRecipe {
                    iterations: recipe.iterations / 2,
                    ..recipe.clone()
                },
                limit,
            ));
        }
        if recipe.block_size > 1 {
            candidates.push((
                SyntheticRecipe {
                    block_size: recipe.block_size / 2,
                    ..recipe.clone()
                },
                limit,
            ));
        }
        if !recipe.dep_distances.is_empty() {
            candidates.push((
                SyntheticRecipe {
                    dep_distances: Vec::new(),
                    ..recipe.clone()
                },
                limit,
            ));
        }
        if recipe.branch_percent > 0 {
            candidates.push((
                SyntheticRecipe {
                    branch_percent: 0,
                    branch_random_percent: 0,
                    ..recipe.clone()
                },
                limit,
            ));
        }
        if recipe.random_addresses || recipe.stride_words > 0 {
            candidates.push((
                SyntheticRecipe {
                    random_addresses: false,
                    stride_words: 0,
                    ..recipe.clone()
                },
                limit,
            ));
        }
        if recipe.footprint_words > 4 {
            candidates.push((
                SyntheticRecipe {
                    footprint_words: 4,
                    ..recipe.clone()
                },
                limit,
            ));
        }
        let (alu, mul, div, load, store) = recipe.mix;
        for simpler in [
            (alu.max(1), 0, 0, load, store),
            (alu.max(1), mul, div, 0, 0),
            (1, 0, 0, 0, 0),
        ] {
            if simpler != recipe.mix {
                candidates.push((
                    SyntheticRecipe {
                        mix: simpler,
                        ..recipe.clone()
                    },
                    limit,
                ));
            }
        }
        if let Some(l) = limit {
            if l > 0 {
                candidates.push((recipe.clone(), Some(l / 2)));
            }
            candidates.push((recipe.clone(), None));
        }
        for (cand_recipe, cand_limit) in candidates {
            if let Some(msg) = still_failing(&cand_recipe, cand_limit) {
                recipe = cand_recipe;
                limit = cand_limit;
                why = msg;
                reduced = true;
                break;
            }
        }
        if !reduced {
            return (recipe, limit, why);
        }
    }
}

/// Random recipes spanning the synthesis behavior space. `div` is safe to
/// include: synthetic programs divide by a fixed nonzero register.
fn recipe_strategy() -> impl Strategy<Value = SyntheticRecipe> {
    (
        (1usize..40, 1u64..40),
        (0u32..8, 0u32..4, 0u32..3, 0u32..6, 0u32..4),
        proptest::collection::vec(0u32..10, 0..6),
        (1usize..300, 0u32..40, 0u32..101),
        (0usize..24, 0u64..4, 0u64..u64::MAX),
    )
        .prop_map(
            |(
                (block_size, iterations),
                mut mix,
                dep_distances,
                (footprint_words, branch_percent, branch_random_percent),
                (stride_words, addr_mode, seed),
            )| {
                if mix.0 + mix.1 + mix.2 + mix.3 + mix.4 == 0 {
                    mix.0 = 1;
                }
                SyntheticRecipe {
                    block_size,
                    iterations,
                    mix,
                    dep_distances,
                    footprint_words,
                    branch_percent,
                    branch_random_percent,
                    stride_words,
                    random_addresses: addr_mode == 0,
                    seed,
                }
            },
        )
}

/// Maps a selector to an instruction limit: `None`, zero, a fraction of
/// the program's dynamic length, or just beyond its end.
fn limit_for(recipe: &SyntheticRecipe, sel: u64) -> Option<u64> {
    match sel {
        105.. => None,
        s => Some(recipe.max_dynamic_length() * s / 100),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The block engine and the interpreter are indistinguishable on
    /// random synthetic programs: identical `TraceEvent` streams,
    /// identical register files and memory, identical pc / halt /
    /// retired-count state, identical outcomes — at every limit.
    #[test]
    fn block_engine_matches_interpreter(recipe in recipe_strategy(), sel in 0u64..110) {
        let limit = limit_for(&recipe, sel);
        let p = recipe.generate();
        if let Some(why) = mismatch(&p, limit) {
            let (min_recipe, min_limit, min_why) = shrink(recipe, limit, why);
            prop_assert!(
                false,
                "backends diverge: {min_why}\nminimal recipe: {} (limit {:?})",
                min_recipe.describe(),
                min_limit
            );
        }
    }

    /// `Trace::record` (block engine) and `Trace::record_interpreted`
    /// serialize to the same bytes for every random program and limit.
    #[test]
    fn recordings_are_byte_identical(recipe in recipe_strategy(), sel in 0u64..110) {
        let limit = limit_for(&recipe, sel);
        let p = recipe.generate();
        let block = Trace::record(&p, limit);
        let interp = Trace::record_interpreted(&p, limit);
        match (block, interp) {
            (Ok(b), Ok(i)) => prop_assert_eq!(b.to_bytes(), i.to_bytes()),
            (b, i) => prop_assert_eq!(b, i),
        }
    }
}
