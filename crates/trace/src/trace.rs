//! The recorded trace: a compact encoding of one functional execution.

use std::fs;
use std::io;
use std::path::Path;

use mim_isa::{
    BlockEngine, BlockHooks, Cond, InstClass, Opcode, Program, RunOutcome, TraceEvent, Vm, VmError,
};

use crate::error::TraceError;
use crate::source::{Replay, Sampling};

/// Magic bytes opening every serialized trace.
pub(crate) const MAGIC: &[u8; 8] = b"MIMTRACE";

/// Serialization format version.
pub(crate) const VERSION: u32 = 1;

/// A recorded dynamic instruction trace: everything machine-independent
/// about one functional execution of a [`Program`], encoded compactly.
///
/// Because the ISA is deterministic, the dynamic instruction stream is
/// fully determined by the static program plus two per-execution streams:
/// the **direction bit** of every conditional branch (1 bit each) and the
/// **effective address** of every load/store (one word each). `Trace`
/// stores exactly those two streams — everything else
/// ([`TraceEvent`](mim_isa::TraceEvent) fields like opcode, class,
/// operands, `next_pc`) is reconstructed from the program text during
/// [`replay`](Trace::replay), which is why replay is much faster than
/// re-interpreting the program: no register file, no data memory, no ALU.
///
/// This is the paper's §2.1 record-once premise made concrete: record each
/// `(workload, size)` once, then replay it into the profiler and the
/// cycle-accurate simulator for every design point of a sweep.
///
/// # Example
///
/// ```
/// use mim_isa::{ProgramBuilder, Reg};
/// use mim_trace::{Trace, TraceSource};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = ProgramBuilder::new();
/// b.li(Reg::R1, 3);
/// let top = b.here();
/// b.addi(Reg::R1, Reg::R1, -1);
/// b.bne(Reg::R1, Reg::R0, top);
/// b.halt();
/// let p = b.build();
///
/// let trace = Trace::record(&p, None)?;
/// assert_eq!(trace.len(), 7); // 1 li + 3 × (addi, bne)
/// assert!(trace.halted());
///
/// // Replay reconstructs the identical event stream without executing.
/// let mut classes = Vec::new();
/// trace.replay(&p)?.drive(&mut |ev| classes.push(ev.class))?;
/// assert_eq!(classes.len(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Trace {
    name: String,
    fingerprint: u64,
    text_len: u32,
    events: u64,
    halted: bool,
    taken_bits: u64,
    taken: Vec<u64>,
    addrs: Vec<u64>,
}

impl Trace {
    /// Records the program's functional execution (at most `limit` retired
    /// instructions, or to completion) into a trace.
    ///
    /// This is the **only** place the trace layer executes the program;
    /// every downstream consumer replays the recording instead. The
    /// execution runs on the block-compiled [`BlockEngine`] by default —
    /// the trace's two streams (branch direction bits, effective
    /// addresses) map one-to-one onto the engine's
    /// [`cond_branch`](BlockHooks::cond_branch) and
    /// [`mem_access`](BlockHooks::mem_access) hooks, so recording pays no
    /// per-event [`TraceEvent`] reconstruction. With the block engine
    /// disabled ([`mim_isa::block_engine_enabled`]) this falls back to
    /// [`record_interpreted`](Trace::record_interpreted); the produced
    /// trace is byte-identical either way.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    pub fn record(program: &Program, limit: Option<u64>) -> Result<Trace, VmError> {
        if !mim_isa::block_engine_enabled() {
            return Trace::record_interpreted(program, limit);
        }
        let mut trace = Trace::empty_for(program);
        let mut engine = BlockEngine::new(program);
        let outcome = engine.run_hooks(limit, &mut RecordHooks { trace: &mut trace })?;
        trace.events = outcome.instructions();
        trace.halted = outcome.halted();
        Ok(trace)
    }

    /// Records via the per-step interpreter [`Vm`], bypassing the block
    /// engine — the differential oracle against
    /// [`record`](Trace::record): both constructors produce byte-identical
    /// traces ([`to_bytes`](Trace::to_bytes)) for every program.
    ///
    /// # Errors
    ///
    /// Propagates any [`VmError`] raised during execution.
    pub fn record_interpreted(program: &Program, limit: Option<u64>) -> Result<Trace, VmError> {
        let mut trace = Trace::empty_for(program);
        let mut vm = Vm::new(program);
        let outcome = vm.run_with(limit, |ev| {
            trace.events += 1;
            if ev.class == InstClass::CondBranch {
                trace.push_bit(ev.taken == Some(true));
            }
            if let Some(addr) = ev.eff_addr {
                trace.addrs.push(addr);
            }
        })?;
        trace.halted = outcome.halted();
        Ok(trace)
    }

    /// An empty trace carrying `program`'s identity, ready for a recording
    /// pass to fill in.
    fn empty_for(program: &Program) -> Trace {
        Trace {
            name: program.name().to_string(),
            fingerprint: Trace::fingerprint_of(program),
            text_len: program.len() as u32,
            events: 0,
            halted: false,
            taken_bits: 0,
            taken: Vec::new(),
            addrs: Vec::new(),
        }
    }

    /// Name of the recorded program.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of retired instructions recorded.
    pub fn len(&self) -> u64 {
        self.events
    }

    /// True for a trace of zero retired instructions.
    pub fn is_empty(&self) -> bool {
        self.events == 0
    }

    /// True if the recorded execution ran to `halt` (as opposed to hitting
    /// the recording's instruction limit).
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Conditional branches recorded (= direction bits stored).
    pub fn branches(&self) -> u64 {
        self.taken_bits
    }

    /// Memory operations recorded (= effective addresses stored).
    pub fn mem_ops(&self) -> u64 {
        self.addrs.len() as u64
    }

    /// Conditional branches recorded as taken — a popcount over the stored
    /// direction bits, so the machine-independent taken rate
    /// (`taken_branches() / branches()`) is available without a replay.
    pub fn taken_branches(&self) -> u64 {
        self.taken.iter().map(|w| u64::from(w.count_ones())).sum()
    }

    /// Approximate in-memory footprint of the encoded streams, in bytes —
    /// 1 bit per branch plus 8 bytes per memory operation, versus the
    /// full [`TraceEvent`](mim_isa::TraceEvent) this expands to on replay.
    pub fn encoded_bytes(&self) -> usize {
        self.taken.len() * 8 + self.addrs.len() * 8
    }

    /// True if `program` is the program this trace was recorded from
    /// (matched by a stable content fingerprint, not by name).
    pub fn matches(&self, program: &Program) -> bool {
        self.text_len == program.len() as u32 && self.fingerprint == Trace::fingerprint_of(program)
    }

    /// Replays the recording against its program, yielding a
    /// [`TraceSource`](crate::TraceSource) that reconstructs the identical
    /// event stream without functional execution.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ProgramMismatch`] if `program` is not the
    /// program this trace was recorded from.
    pub fn replay<'a>(&'a self, program: &'a Program) -> Result<Replay<'a>, TraceError> {
        if !self.matches(program) {
            return Err(TraceError::ProgramMismatch {
                trace: self.name.clone(),
                program: program.name().to_string(),
            });
        }
        Ok(Replay::new(self, program))
    }

    /// Replays only systematically sampled windows of the recording (for
    /// `Large` runs where even replay is worth truncating); see
    /// [`Sampling`].
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::ProgramMismatch`] if `program` is not the
    /// program this trace was recorded from.
    pub fn sampled_replay<'a>(
        &'a self,
        program: &'a Program,
        sampling: Sampling,
    ) -> Result<Replay<'a>, TraceError> {
        Ok(self.replay(program)?.with_sampling(sampling))
    }

    /// The stored outcome of the recorded execution, as a [`RunOutcome`].
    pub fn outcome(&self) -> RunOutcome {
        if self.halted {
            RunOutcome::Halted {
                instructions: self.events,
            }
        } else {
            RunOutcome::LimitReached {
                instructions: self.events,
            }
        }
    }

    // ---- encoding internals ------------------------------------------------

    fn push_bit(&mut self, bit: bool) {
        let word = (self.taken_bits / 64) as usize;
        if word == self.taken.len() {
            self.taken.push(0);
        }
        if bit {
            self.taken[word] |= 1u64 << (self.taken_bits % 64);
        }
        self.taken_bits += 1;
    }

    pub(crate) fn bit(&self, index: u64) -> bool {
        (self.taken[(index / 64) as usize] >> (index % 64)) & 1 == 1
    }

    pub(crate) fn addr(&self, index: usize) -> Option<u64> {
        self.addrs.get(index).copied()
    }

    pub(crate) fn events(&self) -> u64 {
        self.events
    }

    pub(crate) fn taken_len(&self) -> u64 {
        self.taken_bits
    }

    /// Stable 64-bit FNV-1a content fingerprint of a program (text and
    /// initial data image — deliberately **not** the name, so renamed
    /// copies of the same program still match their traces), used to pair
    /// traces with programs across serialization. Independent of
    /// `std::hash` so the bytes written by [`to_bytes`](Trace::to_bytes)
    /// are identical across builds.
    pub fn fingerprint_of(program: &Program) -> u64 {
        let mut h = Fnv::new();
        h.u32(program.len() as u32);
        for inst in program.text() {
            h.byte(opcode_code(inst.opcode));
            h.byte(inst.dst.index() as u8);
            h.byte(inst.src1.index() as u8);
            h.byte(inst.src2.index() as u8);
            h.u64(inst.imm as u64);
        }
        h.u64(program.data().len() as u64);
        for &word in program.data() {
            h.u64(word as u64);
        }
        h.finish()
    }

    // ---- serialization -----------------------------------------------------

    /// Serializes the trace to a deterministic byte image: the same trace
    /// always produces the same bytes, on every platform and build.
    ///
    /// Layout: magic, version, flags, name, program identity, event count,
    /// the branch-direction bitvector, and the zigzag-delta LEB128-encoded
    /// address stream.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.taken.len() * 8 + self.addrs.len() * 2);
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.push(u8::from(self.halted));
        out.extend_from_slice(&(self.name.len() as u32).to_le_bytes());
        out.extend_from_slice(self.name.as_bytes());
        out.extend_from_slice(&self.text_len.to_le_bytes());
        out.extend_from_slice(&self.fingerprint.to_le_bytes());
        out.extend_from_slice(&self.events.to_le_bytes());
        out.extend_from_slice(&self.taken_bits.to_le_bytes());
        for &word in &self.taken {
            out.extend_from_slice(&word.to_le_bytes());
        }
        out.extend_from_slice(&(self.addrs.len() as u64).to_le_bytes());
        let mut prev = 0u64;
        for &addr in &self.addrs {
            // Consecutive memory addresses are usually near each other:
            // zigzag deltas keep most of the stream at one byte per access.
            write_varint(&mut out, zigzag(addr.wrapping_sub(prev) as i64));
            prev = addr;
        }
        out
    }

    /// Decodes a trace from bytes produced by [`to_bytes`](Trace::to_bytes).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Corrupt`] on any malformed input.
    pub fn from_bytes(bytes: &[u8]) -> Result<Trace, TraceError> {
        let mut r = Reader::new(bytes);
        if r.take(MAGIC.len())? != MAGIC.as_slice() {
            return Err(TraceError::Corrupt("bad magic".into()));
        }
        let version = r.u32()?;
        if version != VERSION {
            return Err(TraceError::Corrupt(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let flags = r.u8()?;
        if flags > 1 {
            return Err(TraceError::Corrupt(format!("unknown flags {flags:#x}")));
        }
        let name_len = r.u32()? as usize;
        let name = String::from_utf8(r.take(name_len)?.to_vec())
            .map_err(|_| TraceError::Corrupt("name is not UTF-8".into()))?;
        let text_len = r.u32()?;
        let fingerprint = r.u64()?;
        let events = r.u64()?;
        let taken_bits = r.u64()?;
        if taken_bits > events {
            return Err(TraceError::Corrupt("more branch bits than events".into()));
        }
        // Bound every allocation by the bytes actually present, so crafted
        // headers with huge counts are rejected instead of aborting the
        // process in the allocator.
        let words = taken_bits.div_ceil(64);
        if words > (r.remaining() / 8) as u64 {
            return Err(TraceError::Corrupt(
                "branch bitvector larger than input".into(),
            ));
        }
        let words = words as usize;
        let mut taken = Vec::with_capacity(words);
        for _ in 0..words {
            taken.push(r.u64()?);
        }
        let addr_count = r.u64()?;
        if addr_count > events {
            return Err(TraceError::Corrupt("more addresses than events".into()));
        }
        if addr_count > r.remaining() as u64 {
            // Each address takes at least one varint byte.
            return Err(TraceError::Corrupt(
                "address stream larger than input".into(),
            ));
        }
        let mut addrs = Vec::with_capacity(addr_count as usize);
        let mut prev = 0u64;
        for _ in 0..addr_count {
            let delta = unzigzag(r.varint()?);
            prev = prev.wrapping_add(delta as u64);
            addrs.push(prev);
        }
        if !r.at_end() {
            return Err(TraceError::Corrupt("trailing bytes".into()));
        }
        Ok(Trace {
            name,
            fingerprint,
            text_len,
            events,
            halted: flags == 1,
            taken_bits,
            taken,
            addrs,
        })
    }

    /// Writes the trace to `path` (see [`to_bytes`](Trace::to_bytes)).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        fs::write(path, self.to_bytes())
    }

    /// Reads a trace previously written with [`write_to`](Trace::write_to).
    ///
    /// # Errors
    ///
    /// Propagates file-system errors; decoding failures surface as
    /// [`io::ErrorKind::InvalidData`].
    pub fn read_from(path: impl AsRef<Path>) -> io::Result<Trace> {
        let bytes = fs::read(path)?;
        Trace::from_bytes(&bytes)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
    }
}

/// The recording hook set for the block engine: exactly the two dynamic
/// streams a [`Trace`] stores. Event counts and the halted flag come from
/// the engine's [`RunOutcome`], so every other hook stays a no-op and the
/// fast path never materializes a [`TraceEvent`] the recording would
/// discard.
struct RecordHooks<'t> {
    trace: &'t mut Trace,
}

impl BlockHooks for RecordHooks<'_> {
    #[inline(always)]
    fn mem_access(&mut self, _op: &TraceEvent, addr: u64) {
        self.trace.addrs.push(addr);
    }

    #[inline(always)]
    fn cond_branch(&mut self, _op: &TraceEvent, taken: bool) {
        self.trace.push_bit(taken);
    }
}

/// Stable byte encoding of an opcode for fingerprinting (not persisted in
/// traces themselves — the trace stores no instructions).
fn opcode_code(op: Opcode) -> u8 {
    match op {
        Opcode::Add => 0,
        Opcode::Sub => 1,
        Opcode::And => 2,
        Opcode::Or => 3,
        Opcode::Xor => 4,
        Opcode::Sll => 5,
        Opcode::Srl => 6,
        Opcode::Sra => 7,
        Opcode::Slt => 8,
        Opcode::SltU => 9,
        Opcode::Addi => 10,
        Opcode::Andi => 11,
        Opcode::Ori => 12,
        Opcode::Xori => 13,
        Opcode::Slli => 14,
        Opcode::Srli => 15,
        Opcode::Srai => 16,
        Opcode::Slti => 17,
        Opcode::Li => 18,
        Opcode::Mul => 19,
        Opcode::Div => 20,
        Opcode::Rem => 21,
        Opcode::Ld => 22,
        Opcode::St => 23,
        Opcode::J => 24,
        Opcode::Nop => 25,
        Opcode::Halt => 26,
        Opcode::Br(Cond::Eq) => 27,
        Opcode::Br(Cond::Ne) => 28,
        Opcode::Br(Cond::Lt) => 29,
        Opcode::Br(Cond::Ge) => 30,
        Opcode::Br(Cond::LtU) => 31,
        Opcode::Br(Cond::GeU) => 32,
    }
}

/// Incremental FNV-1a (64-bit).
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(0xcbf2_9ce4_8422_2325)
    }

    fn byte(&mut self, b: u8) {
        self.0 ^= u64::from(b);
        self.0 = self.0.wrapping_mul(0x0000_0100_0000_01b3);
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.byte(b);
        }
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn finish(&self) -> u64 {
        self.0
    }
}

fn zigzag(v: i64) -> u64 {
    ((v as u64) << 1) ^ ((v >> 63) as u64)
}

pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Bounds-checked little reader over a byte slice.
struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(bytes: &'a [u8]) -> Reader<'a> {
        Reader { bytes, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], TraceError> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&end| end <= self.bytes.len())
            .ok_or_else(|| TraceError::Corrupt("truncated input".into()))?;
        let slice = &self.bytes[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> Result<u8, TraceError> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> Result<u32, TraceError> {
        Ok(u32::from_le_bytes(
            self.take(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64, TraceError> {
        Ok(u64::from_le_bytes(
            self.take(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn varint(&mut self) -> Result<u64, TraceError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.u8()?;
            // The 10th byte holds only the top bit (shift 63): payload
            // bits that would shift out mark a non-canonical encoding.
            if shift == 63 && byte > 1 {
                return Err(TraceError::Corrupt("varint overflows 64 bits".into()));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(TraceError::Corrupt("varint overran 64 bits".into()))
    }

    fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    fn at_end(&self) -> bool {
        self.pos == self.bytes.len()
    }
}
