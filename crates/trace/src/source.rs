//! The [`TraceSource`] abstraction: one interface over live functional
//! execution and recorded-trace replay.

use mim_isa::{BlockEngine, InstClass, Program, RunOutcome, TraceEvent, Vm};

use crate::error::TraceError;
use crate::trace::Trace;

/// A producer of the dynamic instruction stream.
///
/// Timing consumers (`mim-pipeline`'s simulator, `mim-profile`'s
/// profilers) are written against this trait, so they neither know nor
/// care whether events come from a live [`Vm`] pass ([`LiveVm`]) or from a
/// recorded [`Trace`] ([`Replay`]). That decoupling is the paper's §2.1
/// framework applied to the whole stack: functional execution happens
/// once, timing passes happen per design point.
///
/// A source is driven **once**: [`drive`](TraceSource::drive) consumes the
/// stream from the source's current position to its end (instruction
/// limits are a property of the source, fixed at construction). Replays
/// enforce this: a second drive raises [`TraceError::Exhausted`] instead
/// of silently reporting a successful zero-event pass.
pub trait TraceSource {
    /// Name of the workload producing the stream.
    fn name(&self) -> &str;

    /// Drives `observer` over every remaining event of the stream and
    /// reports how the underlying execution ended.
    ///
    /// # Errors
    ///
    /// [`LiveVm`] propagates functional faults as [`TraceError::Vm`];
    /// [`Replay`] raises [`TraceError::Corrupt`] if the trace walks off
    /// the program text (possible only for hand-built or corrupted
    /// traces — [`Trace::replay`] already rejects mismatched programs).
    fn drive(&mut self, observer: &mut dyn FnMut(&TraceEvent)) -> Result<RunOutcome, TraceError>;

    /// The sampling plan governing this source's stream, if any.
    ///
    /// Consumers that care about sample-unit structure (the sampled timing
    /// simulation) read the plan here; sources without one expose the
    /// whole stream as a single measured unit.
    fn sampling(&self) -> Option<Sampling> {
        None
    }

    /// Drives `observer` with each event tagged by its [`SamplePhase`]
    /// under the source's sampling plan.
    ///
    /// Sampled sources deliver [`SamplePhase::Warm`] events (walked for
    /// functional warming between detailed units) and
    /// [`SamplePhase::Measure`] events (inside a sample window);
    /// [`SamplePhase::Skip`] events are walked but never delivered — not
    /// materializing them is where sampling's speedup comes from. The
    /// default implementation wraps [`drive`](TraceSource::drive) and tags
    /// everything [`SamplePhase::Measure`].
    ///
    /// # Errors
    ///
    /// Same contract as [`drive`](TraceSource::drive).
    fn drive_phased(
        &mut self,
        observer: &mut dyn FnMut(SamplePhase, &TraceEvent),
    ) -> Result<RunOutcome, TraceError> {
        self.drive(&mut |ev| observer(SamplePhase::Measure, ev))
    }
}

/// The role of one walked event under a [`Sampling`] plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SamplePhase {
    /// Fast-forward: the event is walked so control flow advances, but no
    /// observer sees it.
    Skip,
    /// Functional warming: the event should update cache-hierarchy and
    /// branch-predictor *state* only — no timing is charged.
    Warm,
    /// Detailed measurement: the event is inside a sample window and runs
    /// through the full timing model.
    Measure,
}

/// The functional backend a [`LiveVm`] drives: the per-step interpreter
/// ([`Vm`]) or the block-compiled engine ([`BlockEngine`]). Both emit the
/// identical [`TraceEvent`] stream; the choice only affects throughput.
enum Backend<'p> {
    Interp(Vm<'p>),
    Block(BlockEngine<'p>),
}

/// The live recording backend: drives a functional execution pass,
/// emitting each retired instruction as it executes.
///
/// This is the only [`TraceSource`] that actually executes the program;
/// it backs the legacy program-based entry points
/// (`PipelineSim::simulate`, `SweepProfiler::profile`) and
/// [`Trace::record`]. By default it runs on the block-compiled
/// [`BlockEngine`]; [`LiveVm::interpreted`] (or
/// `MIM_BLOCK_ENGINE=off`, see [`mim_isa::block_engine_enabled`]) forces
/// the per-step interpreter, which emits the byte-identical stream at a
/// fraction of the throughput and serves as the differential oracle.
pub struct LiveVm<'p> {
    program: &'p Program,
    backend: Backend<'p>,
    limit: Option<u64>,
}

impl<'p> LiveVm<'p> {
    /// A live source over a fresh functional engine for `program`,
    /// unlimited. Uses the block-compiled engine unless the block engine
    /// has been disabled ([`mim_isa::block_engine_enabled`]).
    pub fn new(program: &'p Program) -> LiveVm<'p> {
        let backend = if mim_isa::block_engine_enabled() {
            Backend::Block(BlockEngine::new(program))
        } else {
            Backend::Interp(Vm::new(program))
        };
        LiveVm {
            program,
            backend,
            limit: None,
        }
    }

    /// A live source pinned to the per-step interpreter regardless of the
    /// engine toggle — the differential oracle, and the baseline the
    /// `trace_replay` bench measures block-engine speedup against.
    pub fn interpreted(program: &'p Program) -> LiveVm<'p> {
        LiveVm {
            program,
            backend: Backend::Interp(Vm::new(program)),
            limit: None,
        }
    }

    /// Bounds the pass to `limit` retired instructions.
    pub fn with_limit(mut self, limit: Option<u64>) -> LiveVm<'p> {
        self.limit = limit;
        self
    }
}

impl TraceSource for LiveVm<'_> {
    fn name(&self) -> &str {
        self.program.name()
    }

    fn drive(&mut self, observer: &mut dyn FnMut(&TraceEvent)) -> Result<RunOutcome, TraceError> {
        match &mut self.backend {
            Backend::Interp(vm) => Ok(vm.run_with(self.limit, |ev| observer(ev))?),
            Backend::Block(engine) => Ok(engine.run_with(self.limit, |ev| observer(ev))?),
        }
    }
}

/// Systematic sampling plan for replay: out of every `period` events,
/// `length` are emitted (the classic SMARTS-style periodic sampling of the
/// dynamic instruction stream).
///
/// Sample windows start at stream positions `offset + k * period`; the
/// `warmup` events immediately before each window are tagged
/// [`SamplePhase::Warm`] so consumers can functionally warm caches and
/// predictors without charging timing. A non-zero
/// [`offset`](Sampling::with_offset) keeps the first window from
/// measuring program cold-start.
///
/// Intended for `Large` runs where even replay is worth truncating:
/// consumers observe `length/period` of the stream and scale additive
/// statistics by [`scale`](Sampling::scale). The replay still *walks* the
/// skipped events (the control-flow chain must advance), but skipping the
/// observer — the expensive part, cache/predictor simulation — is where
/// the time goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampling {
    period: u64,
    length: u64,
    warmup: u64,
    offset: u64,
}

impl Sampling {
    /// A plan emitting `length` of every `period` events, with no warming
    /// and no offset.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < length <= period`. Paths fed by untrusted input
    /// (serve job specs) must use [`try_new`](Sampling::try_new) instead.
    pub fn new(period: u64, length: u64) -> Sampling {
        Sampling::try_new(period, length)
            .unwrap_or_else(|_| panic!("sampling needs 0 < length ({length}) <= period ({period})"))
    }

    /// Fallible constructor: rejects impossible geometry with a typed
    /// error instead of panicking, so a bad request can never take down a
    /// worker that builds plans from untrusted specs.
    ///
    /// # Errors
    ///
    /// [`TraceError::InvalidSampling`] unless `0 < length <= period`.
    pub fn try_new(period: u64, length: u64) -> Result<Sampling, TraceError> {
        if length == 0 || length > period {
            return Err(TraceError::InvalidSampling { period, length });
        }
        Ok(Sampling {
            period,
            length,
            warmup: 0,
            offset: 0,
        })
    }

    /// The default plan for sampled timing simulation: 1-in-10 coverage
    /// (100-event windows every 1000 events) with full functional warming
    /// between windows and the first window offset past position 0 so it
    /// does not measure program cold-start.
    pub fn default_plan() -> Sampling {
        Sampling::new(1000, 100).with_warmup(900).with_offset(100)
    }

    /// Sets the number of events before each sample window tagged
    /// [`SamplePhase::Warm`] (functional state updates, no timing).
    /// `period - length` warms through every skipped event.
    pub fn with_warmup(mut self, warmup: u64) -> Sampling {
        self.warmup = warmup;
        self
    }

    /// Shifts all sample windows to start at `offset + k * period`, so
    /// the first window no longer measures the stream's cold-start.
    pub fn with_offset(mut self, offset: u64) -> Sampling {
        self.offset = offset;
        self
    }

    /// Events emitted per period.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// Period of the plan, in events.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// Warm-up length before each window, in events.
    pub fn warmup(&self) -> u64 {
        self.warmup
    }

    /// Stream position of the first sample window.
    pub fn offset(&self) -> u64 {
        self.offset
    }

    /// True if the event at stream position `pos` is inside a sample
    /// window.
    pub fn contains(&self, pos: u64) -> bool {
        self.phase(pos) == SamplePhase::Measure
    }

    /// The [`SamplePhase`] of the event at stream position `pos`:
    /// `Measure` inside a window, `Warm` within `warmup` events before a
    /// window start, `Skip` otherwise.
    pub fn phase(&self, pos: u64) -> SamplePhase {
        if pos >= self.offset && (pos - self.offset) % self.period < self.length {
            return SamplePhase::Measure;
        }
        // Distance to the next window start (always >= 1 here).
        let gap = if pos < self.offset {
            self.offset - pos
        } else {
            self.period - (pos - self.offset) % self.period
        };
        if gap <= self.warmup {
            SamplePhase::Warm
        } else {
            SamplePhase::Skip
        }
    }

    /// Fraction of the stream observed (`length / period`).
    pub fn fraction(&self) -> f64 {
        self.length as f64 / self.period as f64
    }

    /// Factor by which additive statistics gathered under this plan should
    /// be scaled to estimate full-stream values (`period / length`).
    pub fn scale(&self) -> f64 {
        self.period as f64 / self.length as f64
    }
}

/// Replays a recorded [`Trace`] against its program, reconstructing the
/// exact [`TraceEvent`] stream of the original execution without
/// functional interpretation.
///
/// Construct via [`Trace::replay`] (which validates the program
/// fingerprint). The replay walks the program text following the
/// recorded branch directions; per event it does a fetch, a static-field
/// copy, and at most one bit/word read — no register file, no data
/// memory, no arithmetic.
pub struct Replay<'a> {
    trace: &'a Trace,
    program: &'a Program,
    limit: u64,
    sampling: Option<Sampling>,
    driven: bool,
}

impl<'a> Replay<'a> {
    pub(crate) fn new(trace: &'a Trace, program: &'a Program) -> Replay<'a> {
        Replay {
            trace,
            program,
            limit: u64::MAX,
            sampling: None,
            driven: false,
        }
    }

    /// Bounds the replay to the first `limit` recorded events, with the
    /// same semantics as [`Vm::run`]'s limit: replaying a full trace with
    /// limit `n` is equivalent to having executed with limit `n`.
    pub fn with_limit(mut self, limit: Option<u64>) -> Replay<'a> {
        self.limit = limit.unwrap_or(u64::MAX);
        self
    }

    /// Restricts the observer to systematically sampled windows (see
    /// [`Sampling`]); skipped events are still walked, not emitted.
    pub fn with_sampling(mut self, sampling: Sampling) -> Replay<'a> {
        self.sampling = Some(sampling);
        self
    }
}

impl TraceSource for Replay<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn drive(&mut self, observer: &mut dyn FnMut(&TraceEvent)) -> Result<RunOutcome, TraceError> {
        self.drive_phased(&mut |phase, ev| {
            if phase == SamplePhase::Measure {
                observer(ev);
            }
        })
    }

    fn sampling(&self) -> Option<Sampling> {
        self.sampling
    }

    fn drive_phased(
        &mut self,
        observer: &mut dyn FnMut(SamplePhase, &TraceEvent),
    ) -> Result<RunOutcome, TraceError> {
        if self.driven {
            return Err(TraceError::Exhausted {
                source: self.trace.name().to_string(),
            });
        }
        self.driven = true;
        let total = self.trace.events().min(self.limit);
        let mut cursor = MaterializedCursor {
            trace: self.trace,
            taken_idx: 0,
            addr_idx: 0,
        };
        walk_trace(
            self.program,
            self.trace.name(),
            total,
            self.sampling,
            &mut cursor,
            observer,
        )?;

        // Mirror Vm::run_with: `Halted` only when the program halted
        // strictly before the limit; hitting the limit exactly on the last
        // retired instruction reports `LimitReached`, like the live VM.
        if self.trace.halted() && self.trace.events() < self.limit {
            Ok(RunOutcome::Halted {
                instructions: total,
            })
        } else {
            Ok(RunOutcome::LimitReached {
                instructions: total,
            })
        }
    }
}

/// Sequential access to a trace's two recorded streams — branch direction
/// bits and effective addresses — whether materialized in memory
/// ([`Replay`]) or decoded incrementally from storage
/// ([`StreamingReplay`](crate::StreamingReplay)).
///
/// Both replay flavours share [`walk_trace`], so their event streams are
/// identical by construction.
pub(crate) trait StreamCursor {
    /// The next branch direction bit, or `None` if the stream is out.
    fn next_bit(&mut self) -> Result<Option<bool>, TraceError>;

    /// The next effective address, or `None` if the stream is out.
    fn next_addr(&mut self) -> Result<Option<u64>, TraceError>;
}

/// Cursor over an in-memory [`Trace`].
struct MaterializedCursor<'a> {
    trace: &'a Trace,
    taken_idx: u64,
    addr_idx: usize,
}

impl StreamCursor for MaterializedCursor<'_> {
    fn next_bit(&mut self) -> Result<Option<bool>, TraceError> {
        if self.taken_idx >= self.trace.taken_len() {
            return Ok(None);
        }
        let bit = self.trace.bit(self.taken_idx);
        self.taken_idx += 1;
        Ok(Some(bit))
    }

    fn next_addr(&mut self) -> Result<Option<u64>, TraceError> {
        let addr = self.trace.addr(self.addr_idx);
        if addr.is_some() {
            self.addr_idx += 1;
        }
        Ok(addr)
    }
}

/// The shared replay walk: reconstructs `total` events of the dynamic
/// instruction stream from the program text plus the cursor's two recorded
/// streams, delivering each non-[`Skip`](SamplePhase::Skip) event to
/// `observer` tagged with its phase under `sampling`.
///
/// Skipped events are still walked (the control-flow chain must advance)
/// but their [`TraceEvent`] is never materialized.
pub(crate) fn walk_trace(
    program: &Program,
    name: &str,
    total: u64,
    sampling: Option<Sampling>,
    cursor: &mut dyn StreamCursor,
    observer: &mut dyn FnMut(SamplePhase, &TraceEvent),
) -> Result<(), TraceError> {
    let mut pc: u32 = 0;
    let mut pos: u64 = 0;
    while pos < total {
        let inst = program.fetch(pc).ok_or_else(|| {
            TraceError::Corrupt(format!(
                "replay of `{name}` left the program text at pc {pc}"
            ))
        })?;
        let class = inst.class();
        if class == InstClass::Halt {
            return Err(TraceError::Corrupt(format!(
                "replay of `{name}` reached halt at pc {pc} with {} events left",
                total - pos
            )));
        }

        let mut eff_addr = None;
        let mut taken = None;
        let mut next_pc = pc + 1;
        match class {
            InstClass::Load | InstClass::Store => {
                eff_addr = Some(cursor.next_addr()?.ok_or_else(|| {
                    TraceError::Corrupt(format!(
                        "replay of `{name}` ran out of addresses at pc {pc}"
                    ))
                })?);
            }
            InstClass::CondBranch => {
                let t = cursor.next_bit()?.ok_or_else(|| {
                    TraceError::Corrupt(format!(
                        "replay of `{name}` ran out of branch bits at pc {pc}"
                    ))
                })?;
                taken = Some(t);
                if t {
                    next_pc = inst.imm as u32;
                }
            }
            InstClass::Jump => {
                taken = Some(true);
                next_pc = inst.imm as u32;
            }
            _ => {}
        }

        let phase = sampling.map_or(SamplePhase::Measure, |s| s.phase(pos));
        let event_pc = pc;
        pos += 1;
        pc = next_pc;
        if phase != SamplePhase::Skip {
            observer(
                phase,
                &TraceEvent {
                    pc: event_pc,
                    opcode: inst.opcode,
                    class,
                    dst: inst.writes(),
                    sources: inst.sources(),
                    eff_addr,
                    taken,
                    next_pc,
                },
            );
        }
    }
    Ok(())
}
