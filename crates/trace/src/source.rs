//! The [`TraceSource`] abstraction: one interface over live functional
//! execution and recorded-trace replay.

use mim_isa::{BlockEngine, InstClass, Program, RunOutcome, TraceEvent, Vm};

use crate::error::TraceError;
use crate::trace::Trace;

/// A producer of the dynamic instruction stream.
///
/// Timing consumers (`mim-pipeline`'s simulator, `mim-profile`'s
/// profilers) are written against this trait, so they neither know nor
/// care whether events come from a live [`Vm`] pass ([`LiveVm`]) or from a
/// recorded [`Trace`] ([`Replay`]). That decoupling is the paper's §2.1
/// framework applied to the whole stack: functional execution happens
/// once, timing passes happen per design point.
///
/// A source is driven **once**: [`drive`](TraceSource::drive) consumes the
/// stream from the source's current position to its end (instruction
/// limits are a property of the source, fixed at construction).
pub trait TraceSource {
    /// Name of the workload producing the stream.
    fn name(&self) -> &str;

    /// Drives `observer` over every remaining event of the stream and
    /// reports how the underlying execution ended.
    ///
    /// # Errors
    ///
    /// [`LiveVm`] propagates functional faults as [`TraceError::Vm`];
    /// [`Replay`] raises [`TraceError::Corrupt`] if the trace walks off
    /// the program text (possible only for hand-built or corrupted
    /// traces — [`Trace::replay`] already rejects mismatched programs).
    fn drive(&mut self, observer: &mut dyn FnMut(&TraceEvent)) -> Result<RunOutcome, TraceError>;
}

/// The functional backend a [`LiveVm`] drives: the per-step interpreter
/// ([`Vm`]) or the block-compiled engine ([`BlockEngine`]). Both emit the
/// identical [`TraceEvent`] stream; the choice only affects throughput.
enum Backend<'p> {
    Interp(Vm<'p>),
    Block(BlockEngine<'p>),
}

/// The live recording backend: drives a functional execution pass,
/// emitting each retired instruction as it executes.
///
/// This is the only [`TraceSource`] that actually executes the program;
/// it backs the legacy program-based entry points
/// (`PipelineSim::simulate`, `SweepProfiler::profile`) and
/// [`Trace::record`]. By default it runs on the block-compiled
/// [`BlockEngine`]; [`LiveVm::interpreted`] (or
/// `MIM_BLOCK_ENGINE=off`, see [`mim_isa::block_engine_enabled`]) forces
/// the per-step interpreter, which emits the byte-identical stream at a
/// fraction of the throughput and serves as the differential oracle.
pub struct LiveVm<'p> {
    program: &'p Program,
    backend: Backend<'p>,
    limit: Option<u64>,
}

impl<'p> LiveVm<'p> {
    /// A live source over a fresh functional engine for `program`,
    /// unlimited. Uses the block-compiled engine unless the block engine
    /// has been disabled ([`mim_isa::block_engine_enabled`]).
    pub fn new(program: &'p Program) -> LiveVm<'p> {
        let backend = if mim_isa::block_engine_enabled() {
            Backend::Block(BlockEngine::new(program))
        } else {
            Backend::Interp(Vm::new(program))
        };
        LiveVm {
            program,
            backend,
            limit: None,
        }
    }

    /// A live source pinned to the per-step interpreter regardless of the
    /// engine toggle — the differential oracle, and the baseline the
    /// `trace_replay` bench measures block-engine speedup against.
    pub fn interpreted(program: &'p Program) -> LiveVm<'p> {
        LiveVm {
            program,
            backend: Backend::Interp(Vm::new(program)),
            limit: None,
        }
    }

    /// Bounds the pass to `limit` retired instructions.
    pub fn with_limit(mut self, limit: Option<u64>) -> LiveVm<'p> {
        self.limit = limit;
        self
    }
}

impl TraceSource for LiveVm<'_> {
    fn name(&self) -> &str {
        self.program.name()
    }

    fn drive(&mut self, observer: &mut dyn FnMut(&TraceEvent)) -> Result<RunOutcome, TraceError> {
        match &mut self.backend {
            Backend::Interp(vm) => Ok(vm.run_with(self.limit, |ev| observer(ev))?),
            Backend::Block(engine) => Ok(engine.run_with(self.limit, |ev| observer(ev))?),
        }
    }
}

/// Systematic sampling plan for replay: out of every `period` events, the
/// first `length` are emitted (the classic SMARTS-style periodic sampling
/// of the dynamic instruction stream).
///
/// Intended for `Large` runs where even replay is worth truncating:
/// consumers observe `length/period` of the stream and scale additive
/// statistics by [`scale`](Sampling::scale). The replay still *walks* the
/// skipped events (the control-flow chain must advance), but skipping the
/// observer — the expensive part, cache/predictor simulation — is where
/// the time goes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampling {
    period: u64,
    length: u64,
}

impl Sampling {
    /// A plan emitting the first `length` of every `period` events.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < length <= period`.
    pub fn new(period: u64, length: u64) -> Sampling {
        assert!(
            length > 0 && length <= period,
            "sampling needs 0 < length ({length}) <= period ({period})"
        );
        Sampling { period, length }
    }

    /// Events emitted per period.
    pub fn length(&self) -> u64 {
        self.length
    }

    /// Period of the plan, in events.
    pub fn period(&self) -> u64 {
        self.period
    }

    /// True if the event at stream position `pos` is inside a sample
    /// window.
    pub fn contains(&self, pos: u64) -> bool {
        pos % self.period < self.length
    }

    /// Fraction of the stream observed (`length / period`).
    pub fn fraction(&self) -> f64 {
        self.length as f64 / self.period as f64
    }

    /// Factor by which additive statistics gathered under this plan should
    /// be scaled to estimate full-stream values (`period / length`).
    pub fn scale(&self) -> f64 {
        self.period as f64 / self.length as f64
    }
}

/// Replays a recorded [`Trace`] against its program, reconstructing the
/// exact [`TraceEvent`] stream of the original execution without
/// functional interpretation.
///
/// Construct via [`Trace::replay`] (which validates the program
/// fingerprint). The replay walks the program text following the
/// recorded branch directions; per event it does a fetch, a static-field
/// copy, and at most one bit/word read — no register file, no data
/// memory, no arithmetic.
pub struct Replay<'a> {
    trace: &'a Trace,
    program: &'a Program,
    limit: u64,
    sampling: Option<Sampling>,
    pos: u64,
    pc: u32,
    taken_idx: u64,
    addr_idx: usize,
}

impl<'a> Replay<'a> {
    pub(crate) fn new(trace: &'a Trace, program: &'a Program) -> Replay<'a> {
        Replay {
            trace,
            program,
            limit: u64::MAX,
            sampling: None,
            pos: 0,
            pc: 0,
            taken_idx: 0,
            addr_idx: 0,
        }
    }

    /// Bounds the replay to the first `limit` recorded events, with the
    /// same semantics as [`Vm::run`]'s limit: replaying a full trace with
    /// limit `n` is equivalent to having executed with limit `n`.
    pub fn with_limit(mut self, limit: Option<u64>) -> Replay<'a> {
        self.limit = limit.unwrap_or(u64::MAX);
        self
    }

    /// Restricts the observer to systematically sampled windows (see
    /// [`Sampling`]); skipped events are still walked, not emitted.
    pub fn with_sampling(mut self, sampling: Sampling) -> Replay<'a> {
        self.sampling = Some(sampling);
        self
    }
}

impl TraceSource for Replay<'_> {
    fn name(&self) -> &str {
        self.trace.name()
    }

    fn drive(&mut self, observer: &mut dyn FnMut(&TraceEvent)) -> Result<RunOutcome, TraceError> {
        let total = self.trace.events().min(self.limit);
        while self.pos < total {
            let pc = self.pc;
            let inst = self.program.fetch(pc).ok_or_else(|| {
                TraceError::Corrupt(format!(
                    "replay of `{}` left the program text at pc {pc}",
                    self.trace.name()
                ))
            })?;
            let class = inst.class();
            if class == InstClass::Halt {
                return Err(TraceError::Corrupt(format!(
                    "replay of `{}` reached halt at pc {pc} with {} events left",
                    self.trace.name(),
                    total - self.pos
                )));
            }

            let mut eff_addr = None;
            let mut taken = None;
            let mut next_pc = pc + 1;
            match class {
                InstClass::Load | InstClass::Store => {
                    eff_addr = Some(self.trace.addr(self.addr_idx).ok_or_else(|| {
                        TraceError::Corrupt(format!(
                            "replay of `{}` ran out of addresses at pc {pc}",
                            self.trace.name()
                        ))
                    })?);
                    self.addr_idx += 1;
                }
                InstClass::CondBranch => {
                    if self.taken_idx >= self.trace.taken_len() {
                        return Err(TraceError::Corrupt(format!(
                            "replay of `{}` ran out of branch bits at pc {pc}",
                            self.trace.name()
                        )));
                    }
                    let t = self.trace.bit(self.taken_idx);
                    self.taken_idx += 1;
                    taken = Some(t);
                    if t {
                        next_pc = inst.imm as u32;
                    }
                }
                InstClass::Jump => {
                    taken = Some(true);
                    next_pc = inst.imm as u32;
                }
                _ => {}
            }

            let emit = self.sampling.is_none_or(|s| s.contains(self.pos));
            self.pos += 1;
            self.pc = next_pc;
            if emit {
                observer(&TraceEvent {
                    pc,
                    opcode: inst.opcode,
                    class,
                    dst: inst.writes(),
                    sources: inst.sources(),
                    eff_addr,
                    taken,
                    next_pc,
                });
            }
        }

        // Mirror Vm::run_with: `Halted` only when the program halted
        // strictly before the limit; hitting the limit exactly on the last
        // retired instruction reports `LimitReached`, like the live VM.
        if self.trace.halted() && self.trace.events() < self.limit {
            Ok(RunOutcome::Halted {
                instructions: total,
            })
        } else {
            Ok(RunOutcome::LimitReached {
                instructions: total,
            })
        }
    }
}
