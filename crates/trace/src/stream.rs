//! Streaming replay: decode the serialized trace format incrementally.
//!
//! [`StreamingReplay`] reconstructs the same event stream as
//! [`Replay`](crate::Replay) but reads the serialized bytes
//! ([`Trace::to_bytes`](crate::Trace::to_bytes)) directly from an
//! [`io::Read`]` + `[`io::Seek`] — a trace file, a store entry, or an
//! in-memory cursor — without ever materializing the decoded trace.
//! Memory stays bounded by two fixed-size section buffers ([`CHUNK`]
//! bytes each) regardless of trace length, which is what makes sampled
//! simulation of beyond-memory traces routine: a billion-instruction
//! recording replays in the same footprint as a thousand-instruction one.
//!
//! The serialized layout interleaves nothing: the branch-direction
//! bitvector and the zigzag-delta LEB128 address stream are stored as two
//! contiguous sections, consumed here by two independently buffered
//! cursors over the same reader (hence the `Seek` bound — replay consumes
//! the two sections interleaved in stream order).

use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::Path;

use mim_isa::{Program, RunOutcome, TraceEvent};

use crate::error::TraceError;
use crate::source::{walk_trace, SamplePhase, Sampling, StreamCursor, TraceSource};
use crate::trace::{unzigzag, Trace, MAGIC, VERSION};

/// Bytes buffered per section. Two sections are live during a replay, so
/// peak decoder memory is `2 * CHUNK` plus a few words of cursor state —
/// independent of trace length.
pub const CHUNK: usize = 8 * 1024;

/// Replays a serialized trace incrementally from a reader.
///
/// Construct with [`StreamingReplay::new`] (reader positioned at the
/// trace magic) or [`StreamingReplay::open`] for a file written by
/// [`Trace::write_to`](crate::Trace::write_to). The header is validated
/// eagerly — including the program fingerprint, mirroring
/// [`Trace::replay`](crate::Trace::replay) — and the two recorded streams
/// are decoded lazily as the walk consumes them.
///
/// Produces the byte-identical event stream, outcome, and errors as a
/// materialized [`Replay`](crate::Replay) of the same bytes: both run the
/// same walk over the program text, differing only in where the recorded
/// streams are read from.
pub struct StreamingReplay<'p, R: Read + Seek> {
    reader: R,
    program: &'p Program,
    name: String,
    events: u64,
    halted: bool,
    taken_bits: u64,
    addr_count: u64,
    bits_start: u64,
    addrs_start: u64,
    limit: u64,
    sampling: Option<Sampling>,
    driven: bool,
}

impl<'p, R: Read + Seek> StreamingReplay<'p, R> {
    /// Wraps a reader positioned at the start of a serialized trace and
    /// validates its header against `program`.
    ///
    /// The trace may start at any offset (e.g. after a store entry
    /// header); section offsets are computed relative to the reader's
    /// position at the time of this call.
    ///
    /// # Errors
    ///
    /// [`TraceError::Corrupt`] for malformed headers or I/O failures,
    /// [`TraceError::ProgramMismatch`] if the recording is not of
    /// `program` — the same checks [`Trace::from_bytes`] and
    /// [`Trace::replay`](crate::Trace::replay) perform.
    pub fn new(mut reader: R, program: &'p Program) -> Result<StreamingReplay<'p, R>, TraceError> {
        let mut magic = [0u8; 8];
        read_exact(&mut reader, &mut magic)?;
        if &magic != MAGIC {
            return Err(TraceError::Corrupt("bad magic".into()));
        }
        let version = read_u32(&mut reader)?;
        if version != VERSION {
            return Err(TraceError::Corrupt(format!(
                "unsupported version {version} (expected {VERSION})"
            )));
        }
        let flags = read_u8(&mut reader)?;
        if flags > 1 {
            return Err(TraceError::Corrupt(format!("unknown flags {flags:#x}")));
        }
        let name_len = read_u32(&mut reader)? as usize;
        if name_len > 4096 {
            return Err(TraceError::Corrupt("unreasonable name length".into()));
        }
        let mut name_bytes = vec![0u8; name_len];
        read_exact(&mut reader, &mut name_bytes)?;
        let name = String::from_utf8(name_bytes)
            .map_err(|_| TraceError::Corrupt("name is not UTF-8".into()))?;
        let text_len = read_u32(&mut reader)?;
        let fingerprint = read_u64(&mut reader)?;
        let events = read_u64(&mut reader)?;
        let taken_bits = read_u64(&mut reader)?;
        if taken_bits > events {
            return Err(TraceError::Corrupt("more branch bits than events".into()));
        }
        if text_len != program.len() as u32 || fingerprint != Trace::fingerprint_of(program) {
            return Err(TraceError::ProgramMismatch {
                trace: name,
                program: program.name().to_string(),
            });
        }
        let bits_start = stream_position(&mut reader)?;
        let bits_len = taken_bits.div_ceil(64) * 8;
        // The address count sits between the two streams; read it now so
        // both section cursors are fully located before the walk starts.
        reader
            .seek(SeekFrom::Start(bits_start + bits_len))
            .map_err(io_corrupt)?;
        let addr_count = read_u64(&mut reader)?;
        if addr_count > events {
            return Err(TraceError::Corrupt("more addresses than events".into()));
        }
        let addrs_start = bits_start + bits_len + 8;
        Ok(StreamingReplay {
            reader,
            program,
            name,
            events,
            halted: flags == 1,
            taken_bits,
            addr_count,
            bits_start,
            addrs_start,
            limit: u64::MAX,
            sampling: None,
            driven: false,
        })
    }

    /// Bounds the replay to the first `limit` recorded events (same
    /// semantics as [`Replay::with_limit`](crate::Replay::with_limit)).
    pub fn with_limit(mut self, limit: Option<u64>) -> StreamingReplay<'p, R> {
        self.limit = limit.unwrap_or(u64::MAX);
        self
    }

    /// Restricts the observer to systematically sampled windows (same
    /// semantics as
    /// [`Replay::with_sampling`](crate::Replay::with_sampling)).
    pub fn with_sampling(mut self, sampling: Sampling) -> StreamingReplay<'p, R> {
        self.sampling = Some(sampling);
        self
    }

    /// Retired instructions in the recording.
    pub fn events(&self) -> u64 {
        self.events
    }

    /// Peak decoder buffer footprint in bytes: the memory bound the
    /// streaming path guarantees regardless of trace length (reported by
    /// the `sampling_accuracy` bench as its memory proxy).
    pub fn buffer_bytes(&self) -> usize {
        2 * CHUNK
    }
}

impl<'p> StreamingReplay<'p, File> {
    /// Opens a trace file written by
    /// [`Trace::write_to`](crate::Trace::write_to) for streaming replay.
    ///
    /// # Errors
    ///
    /// I/O failures surface as [`TraceError::Corrupt`]; header validation
    /// as in [`StreamingReplay::new`].
    pub fn open(
        path: impl AsRef<Path>,
        program: &'p Program,
    ) -> Result<StreamingReplay<'p, File>, TraceError> {
        let file = File::open(path).map_err(io_corrupt)?;
        StreamingReplay::new(file, program)
    }
}

impl<R: Read + Seek> TraceSource for StreamingReplay<'_, R> {
    fn name(&self) -> &str {
        &self.name
    }

    fn drive(&mut self, observer: &mut dyn FnMut(&TraceEvent)) -> Result<RunOutcome, TraceError> {
        self.drive_phased(&mut |phase, ev| {
            if phase == SamplePhase::Measure {
                observer(ev);
            }
        })
    }

    fn sampling(&self) -> Option<Sampling> {
        self.sampling
    }

    fn drive_phased(
        &mut self,
        observer: &mut dyn FnMut(SamplePhase, &TraceEvent),
    ) -> Result<RunOutcome, TraceError> {
        if self.driven {
            return Err(TraceError::Exhausted {
                source: self.name.clone(),
            });
        }
        self.driven = true;
        let total = self.events.min(self.limit);
        let mut cursor = StreamingCursor {
            reader: &mut self.reader,
            bits: Section::new(self.bits_start, self.taken_bits.div_ceil(64) * 8),
            addrs: Section::new(self.addrs_start, u64::MAX),
            word: 0,
            word_bits: 0,
            bits_read: 0,
            taken_bits: self.taken_bits,
            addrs_read: 0,
            addr_count: self.addr_count,
            prev_addr: 0,
        };
        walk_trace(
            self.program,
            &self.name,
            total,
            self.sampling,
            &mut cursor,
            observer,
        )?;
        if self.halted && self.events < self.limit {
            Ok(RunOutcome::Halted {
                instructions: total,
            })
        } else {
            Ok(RunOutcome::LimitReached {
                instructions: total,
            })
        }
    }
}

/// One bounded region of the reader, consumed forward through a
/// fixed-size buffer. Refills seek to the section's own position, so two
/// sections share one reader without clobbering each other.
struct Section {
    /// Absolute offset of the next byte to fetch from the reader.
    next: u64,
    /// Absolute end of the section (`u64::MAX`: bounded by EOF).
    end: u64,
    buf: Vec<u8>,
    pos: usize,
}

impl Section {
    fn new(start: u64, len: u64) -> Section {
        Section {
            next: start,
            end: start.saturating_add(len),
            buf: Vec::new(),
            pos: 0,
        }
    }

    /// Ensures at least `n` buffered bytes, fetching another chunk from
    /// the reader if needed. Returns `false` if the section ends first.
    fn ensure<R: Read + Seek>(&mut self, n: usize, reader: &mut R) -> Result<bool, TraceError> {
        while self.buf.len() - self.pos < n {
            self.buf.drain(..self.pos);
            self.pos = 0;
            let want = (CHUNK - self.buf.len()).min((self.end - self.next) as usize);
            if want == 0 {
                return Ok(false);
            }
            reader
                .seek(SeekFrom::Start(self.next))
                .map_err(io_corrupt)?;
            let mut tmp = vec![0u8; want];
            let got = reader.read(&mut tmp).map_err(io_corrupt)?;
            if got == 0 {
                // EOF inside the section (possible only for the
                // EOF-bounded address section or a truncated input).
                self.end = self.next;
                return Ok(false);
            }
            self.buf.extend_from_slice(&tmp[..got]);
            self.next += got as u64;
        }
        Ok(true)
    }

    fn u64<R: Read + Seek>(&mut self, reader: &mut R) -> Result<u64, TraceError> {
        if !self.ensure(8, reader)? {
            return Err(TraceError::Corrupt("truncated input".into()));
        }
        let bytes: [u8; 8] = self.buf[self.pos..self.pos + 8]
            .try_into()
            .expect("8 bytes");
        self.pos += 8;
        Ok(u64::from_le_bytes(bytes))
    }

    fn byte<R: Read + Seek>(&mut self, reader: &mut R) -> Result<u8, TraceError> {
        if !self.ensure(1, reader)? {
            return Err(TraceError::Corrupt("truncated input".into()));
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// LEB128 varint with the same canonicality rule as the materialized
    /// decoder: the 10th byte may only hold the top bit.
    fn varint<R: Read + Seek>(&mut self, reader: &mut R) -> Result<u64, TraceError> {
        let mut value = 0u64;
        for shift in (0..64).step_by(7) {
            let byte = self.byte(reader)?;
            if shift == 63 && byte > 1 {
                return Err(TraceError::Corrupt("varint overflows 64 bits".into()));
            }
            value |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(value);
            }
        }
        Err(TraceError::Corrupt("varint overran 64 bits".into()))
    }
}

/// The streaming [`StreamCursor`]: decodes direction bits LSB-first from
/// the bitvector section and zigzag-delta varints from the address
/// section, each through its own [`Section`] buffer.
struct StreamingCursor<'r, R: Read + Seek> {
    reader: &'r mut R,
    bits: Section,
    addrs: Section,
    word: u64,
    word_bits: u32,
    bits_read: u64,
    taken_bits: u64,
    addrs_read: u64,
    addr_count: u64,
    prev_addr: u64,
}

impl<R: Read + Seek> StreamCursor for StreamingCursor<'_, R> {
    fn next_bit(&mut self) -> Result<Option<bool>, TraceError> {
        if self.bits_read >= self.taken_bits {
            return Ok(None);
        }
        if self.word_bits == 0 {
            self.word = self.bits.u64(self.reader)?;
            self.word_bits = 64;
        }
        let bit = self.word & 1 == 1;
        self.word >>= 1;
        self.word_bits -= 1;
        self.bits_read += 1;
        Ok(Some(bit))
    }

    fn next_addr(&mut self) -> Result<Option<u64>, TraceError> {
        if self.addrs_read >= self.addr_count {
            return Ok(None);
        }
        let delta = unzigzag(self.addrs.varint(self.reader)?);
        self.prev_addr = self.prev_addr.wrapping_add(delta as u64);
        self.addrs_read += 1;
        Ok(Some(self.prev_addr))
    }
}

fn io_corrupt(e: std::io::Error) -> TraceError {
    TraceError::Corrupt(format!("trace stream I/O failed: {e}"))
}

fn stream_position<R: Seek>(reader: &mut R) -> Result<u64, TraceError> {
    reader.stream_position().map_err(io_corrupt)
}

fn read_exact<R: Read>(reader: &mut R, buf: &mut [u8]) -> Result<(), TraceError> {
    reader.read_exact(buf).map_err(|e| {
        if e.kind() == std::io::ErrorKind::UnexpectedEof {
            TraceError::Corrupt("truncated input".into())
        } else {
            io_corrupt(e)
        }
    })
}

fn read_u8<R: Read>(reader: &mut R) -> Result<u8, TraceError> {
    let mut b = [0u8; 1];
    read_exact(reader, &mut b)?;
    Ok(b[0])
}

fn read_u32<R: Read>(reader: &mut R) -> Result<u32, TraceError> {
    let mut b = [0u8; 4];
    read_exact(reader, &mut b)?;
    Ok(u32::from_le_bytes(b))
}

fn read_u64<R: Read>(reader: &mut R) -> Result<u64, TraceError> {
    let mut b = [0u8; 8];
    read_exact(reader, &mut b)?;
    Ok(u64::from_le_bytes(b))
}
