//! # mim-trace — record-once dynamic instruction traces
//!
//! The paper's central trick (§2.1) is separating machine-independent
//! workload behavior from machine-dependent timing. This crate applies
//! that separation to the *whole* stack: each `(workload, size)` is
//! functionally executed **exactly once** (recorded into a [`Trace`]),
//! and every timing consumer — the cycle-accurate pipeline simulator, the
//! sweep profiler, the MLP estimator — replays the recording instead of
//! re-interpreting the program.
//!
//! * [`Trace`] — the compact recording: 1 direction bit per conditional
//!   branch plus 1 effective address per memory operation; everything
//!   else is reconstructed from the static program during replay.
//!   Deterministic byte serialization ([`Trace::to_bytes`] /
//!   [`Trace::write_to`]) persists recordings across processes.
//! * [`TraceSource`] — the stream interface consumers are written
//!   against; [`LiveVm`] (functional execution, the recording backend)
//!   and [`Replay`] (trace replay) both implement it.
//! * [`Sampling`] — systematic (SMARTS-style periodic) sampling of the
//!   replayed stream for `Large` runs, with per-window functional warming
//!   ([`SamplePhase::Warm`]) and a window offset so estimates don't
//!   over-weight program cold-start.
//! * [`StreamingReplay`] — the same replay decoded incrementally from a
//!   serialized trace (file, store entry, or cursor) in O(1) memory:
//!   two fixed-size section buffers regardless of trace length.
//!
//! The one recording itself runs on `mim-isa`'s block-compiled engine
//! ([`Trace::record`]'s two streams map directly onto its
//! `cond_branch`/`mem_access` hooks), sustaining ≥5× the per-step
//! interpreter's throughput; replay then streams events ~2.5× faster
//! than interpreted re-execution (no register file, no data memory, no
//! ALU). Both are measured by the `trace_replay_throughput` bench in
//! `mim-bench` and tracked in `BENCH_trace.json` — and, the bigger win,
//! a design-space sweep amortizes the one recording over every design
//! point instead of re-executing per point.
//!
//! ## Example: record once, replay everywhere
//!
//! ```
//! use mim_isa::{ProgramBuilder, Reg};
//! use mim_trace::{LiveVm, Trace, TraceSource};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::named("demo");
//! b.li(Reg::R1, 4);
//! let top = b.here();
//! b.addi(Reg::R1, Reg::R1, -1);
//! b.bne(Reg::R1, Reg::R0, top);
//! b.halt();
//! let p = b.build();
//!
//! // One functional execution...
//! let trace = Trace::record(&p, None)?;
//!
//! // ...then any number of replay passes, each yielding the identical
//! // event stream a live pass would.
//! let mut live = Vec::new();
//! LiveVm::new(&p).drive(&mut |ev| live.push(*ev))?;
//! let mut replayed = Vec::new();
//! trace.replay(&p)?.drive(&mut |ev| replayed.push(*ev))?;
//! assert_eq!(live, replayed);
//!
//! // Recordings serialize to deterministic bytes.
//! let bytes = trace.to_bytes();
//! assert_eq!(Trace::from_bytes(&bytes)?, trace);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod source;
mod stream;
mod trace;

pub use error::TraceError;
pub use source::{LiveVm, Replay, SamplePhase, Sampling, TraceSource};
pub use stream::{StreamingReplay, CHUNK as STREAM_CHUNK_BYTES};
pub use trace::Trace;

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::{Program, ProgramBuilder, Reg, RunOutcome, TraceEvent, VmError};

    /// A small kernel exercising every event shape: ALU, load, store,
    /// taken/not-taken branches, jump, mul.
    fn kernel() -> Program {
        let mut b = ProgramBuilder::named("kernel");
        let data = b.data_words(&[3, 1, 4, 1, 5, 9, 2, 6]);
        b.li(Reg::R1, data as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 8);
        let top = b.here();
        b.ld(Reg::R4, Reg::R1, 0);
        b.mul(Reg::R5, Reg::R4, Reg::R4);
        b.add(Reg::R2, Reg::R2, Reg::R5);
        b.st(Reg::R2, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 8);
        b.addi(Reg::R3, Reg::R3, -1);
        b.bne(Reg::R3, Reg::R0, top);
        b.halt();
        b.build()
    }

    fn live_events(p: &Program, limit: Option<u64>) -> (Vec<TraceEvent>, RunOutcome) {
        let mut events = Vec::new();
        let outcome = LiveVm::new(p)
            .with_limit(limit)
            .drive(&mut |ev| events.push(*ev))
            .expect("live run");
        (events, outcome)
    }

    #[test]
    fn replay_reproduces_live_stream_and_outcome() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let (live, live_outcome) = live_events(&p, None);
        let mut replayed = Vec::new();
        let outcome = trace
            .replay(&p)
            .unwrap()
            .drive(&mut |ev| replayed.push(*ev))
            .unwrap();
        assert_eq!(live, replayed);
        assert_eq!(live_outcome, outcome);
        assert_eq!(trace.len(), live.len() as u64);
        assert!(trace.halted());
    }

    #[test]
    fn replay_limits_match_vm_limit_semantics() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let n = trace.len();
        // Truncating, exact, and beyond-the-end limits all behave like a
        // live run with the same limit.
        for limit in [1, 5, n - 1, n, n + 1] {
            let (live, live_outcome) = live_events(&p, Some(limit));
            let mut replayed = Vec::new();
            let outcome = trace
                .replay(&p)
                .unwrap()
                .with_limit(Some(limit))
                .drive(&mut |ev| replayed.push(*ev))
                .unwrap();
            assert_eq!(live, replayed, "limit {limit}");
            assert_eq!(live_outcome, outcome, "limit {limit}");
        }
    }

    #[test]
    fn truncated_recording_replays_its_window() {
        let p = kernel();
        let trace = Trace::record(&p, Some(10)).unwrap();
        assert!(!trace.halted());
        assert_eq!(trace.len(), 10);
        let (live, _) = live_events(&p, Some(10));
        let mut replayed = Vec::new();
        let outcome = trace
            .replay(&p)
            .unwrap()
            .drive(&mut |ev| replayed.push(*ev))
            .unwrap();
        assert_eq!(live, replayed);
        assert_eq!(outcome, RunOutcome::LimitReached { instructions: 10 });
    }

    #[test]
    fn serialization_round_trips_deterministically() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let bytes = trace.to_bytes();
        assert_eq!(bytes, trace.to_bytes(), "encoding is deterministic");
        let decoded = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.to_bytes(), bytes);
        // The decoded trace still replays.
        let (live, _) = live_events(&p, None);
        let mut replayed = Vec::new();
        decoded
            .replay(&p)
            .unwrap()
            .drive(&mut |ev| replayed.push(*ev))
            .unwrap();
        assert_eq!(live, replayed);
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_panicked() {
        let p = kernel();
        let bytes = Trace::record(&p, None).unwrap().to_bytes();
        assert!(matches!(
            Trace::from_bytes(&bytes[..bytes.len() - 1]),
            Err(TraceError::Corrupt(_))
        ));
        assert!(matches!(
            Trace::from_bytes(b"NOTATRACE"),
            Err(TraceError::Corrupt(_))
        ));
        let mut versioned = bytes.clone();
        versioned[8] = 0xee; // version field
        assert!(matches!(
            Trace::from_bytes(&versioned),
            Err(TraceError::Corrupt(_))
        ));
        // Truncating at every prefix length must error, never panic.
        for len in 0..bytes.len().min(64) {
            assert!(Trace::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn replaying_against_wrong_program_is_rejected() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let mut other = ProgramBuilder::named("kernel"); // same name, different text
        other.li(Reg::R1, 1);
        other.halt();
        let other = other.build();
        assert!(!trace.matches(&other));
        assert!(matches!(
            trace.replay(&other),
            Err(TraceError::ProgramMismatch { .. })
        ));
    }

    #[test]
    fn huge_header_counts_are_rejected_without_allocating() {
        let p = kernel();
        let bytes = Trace::record(&p, None).unwrap().to_bytes();
        // Header layout: magic(8) version(4) flags(1) name_len(4) name
        // text_len(4) fingerprint(8) events(8) taken_bits(8) ...
        let name_len = p.name().len();
        let events_off = 17 + name_len + 4 + 8;
        let taken_off = events_off + 8;
        let mut crafted = bytes.clone();
        crafted[events_off..events_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        crafted[taken_off..taken_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        // Must reject (bitvector larger than input), not abort in the
        // allocator.
        assert!(matches!(
            Trace::from_bytes(&crafted),
            Err(TraceError::Corrupt(_))
        ));
        // Same for an oversized address count with sane branch bits (the
        // kernel's 8 branch bits occupy one 64-bit word after taken_bits).
        let addr_off = taken_off + 8 + 8;
        let mut crafted = bytes;
        crafted[events_off..events_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        crafted[addr_off..addr_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        assert!(matches!(
            Trace::from_bytes(&crafted),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn renamed_identical_program_still_matches() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let renamed = Program::from_parts("kernel/O3", p.text().to_vec(), p.data().to_vec());
        assert!(trace.matches(&renamed), "fingerprint is content, not name");
        let mut events = 0u64;
        trace
            .replay(&renamed)
            .unwrap()
            .drive(&mut |_| events += 1)
            .unwrap();
        assert_eq!(events, trace.len());
    }

    #[test]
    fn file_round_trip() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let path = std::env::temp_dir().join(format!("mim-trace-{}.bin", std::process::id()));
        trace.write_to(&path).unwrap();
        let back = Trace::read_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, trace);
    }

    #[test]
    fn sampling_emits_only_window_events() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let sampling = Sampling::new(10, 3);
        let (live, _) = live_events(&p, None);
        let expected: Vec<TraceEvent> = live
            .iter()
            .enumerate()
            .filter(|(i, _)| sampling.contains(*i as u64))
            .map(|(_, ev)| *ev)
            .collect();
        let mut sampled = Vec::new();
        let outcome = trace
            .sampled_replay(&p, sampling)
            .unwrap()
            .drive(&mut |ev| sampled.push(*ev))
            .unwrap();
        assert_eq!(sampled, expected);
        // The walk still covers the full stream.
        assert_eq!(outcome.instructions(), trace.len());
        assert!((sampling.fraction() - 0.3).abs() < 1e-12);
        assert!((sampling.scale() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn redriving_an_exhausted_replay_is_an_error() {
        // Regression: a second `drive` used to skip the walk and re-report
        // a successful outcome with zero events, silently corrupting any
        // consumer that aggregated the second pass.
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let mut replay = trace.replay(&p).unwrap();
        let mut events = 0u64;
        replay.drive(&mut |_| events += 1).unwrap();
        assert_eq!(events, trace.len());
        let again = replay.drive(&mut |_| panic!("no events on a re-drive"));
        assert!(
            matches!(again, Err(TraceError::Exhausted { ref source }) if source == "kernel"),
            "re-drive must fail, got {again:?}"
        );
        // Same contract on the phased entry point and the streaming replay.
        let mut replay = trace.replay(&p).unwrap();
        replay.drive_phased(&mut |_, _| {}).unwrap();
        assert!(matches!(
            replay.drive(&mut |_| {}),
            Err(TraceError::Exhausted { .. })
        ));
        let bytes = trace.to_bytes();
        let mut streaming = StreamingReplay::new(std::io::Cursor::new(bytes), &p).unwrap();
        streaming.drive(&mut |_| {}).unwrap();
        assert!(matches!(
            streaming.drive(&mut |_| {}),
            Err(TraceError::Exhausted { .. })
        ));
    }

    #[test]
    fn try_new_rejects_bad_geometry_new_still_panics() {
        assert!(matches!(
            Sampling::try_new(10, 0),
            Err(TraceError::InvalidSampling {
                period: 10,
                length: 0
            })
        ));
        assert!(matches!(
            Sampling::try_new(10, 11),
            Err(TraceError::InvalidSampling { .. })
        ));
        assert_eq!(Sampling::try_new(10, 10).unwrap().fraction(), 1.0);
        let err = Sampling::try_new(5, 9).unwrap_err();
        assert!(err.to_string().contains("0 < length (9) <= period (5)"));
        assert!(std::panic::catch_unwind(|| Sampling::new(10, 0)).is_err());
    }

    #[test]
    fn sampling_phases_partition_the_stream() {
        let s = Sampling::new(10, 3).with_warmup(4).with_offset(5);
        // Windows at 5..8, 15..18, ...; warm-up covers the 4 positions
        // before each window start.
        let phases: Vec<SamplePhase> = (0..20).map(|pos| s.phase(pos)).collect();
        use SamplePhase::*;
        assert_eq!(
            phases,
            vec![
                Skip, Warm, Warm, Warm, Warm, // 0..5: warm-up into window 0
                Measure, Measure, Measure, // 5..8: window 0
                Skip, Skip, Skip, // 8..11
                Warm, Warm, Warm, Warm, // 11..15: warm-up into window 1
                Measure, Measure, Measure, // 15..18: window 1
                Skip, Skip,
            ]
        );
        // `contains` is exactly the Measure phase.
        for pos in 0..50 {
            assert_eq!(s.contains(pos), s.phase(pos) == SamplePhase::Measure);
        }
        // Full warming tags every non-measured event Warm.
        let full = Sampling::new(10, 3).with_warmup(7);
        assert!((0..100).all(|p| full.phase(p) != SamplePhase::Skip));
    }

    #[test]
    fn drive_phased_tags_warm_and_measure_consistently() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let sampling = Sampling::new(10, 3).with_warmup(2).with_offset(4);
        let (live, _) = live_events(&p, None);
        let mut tagged = Vec::new();
        let outcome = trace
            .sampled_replay(&p, sampling)
            .unwrap()
            .drive_phased(&mut |phase, ev| tagged.push((phase, *ev)))
            .unwrap();
        assert_eq!(outcome.instructions(), trace.len());
        // Every delivered event matches the live stream at its position
        // and carries the phase the plan assigns to that position.
        let expected: Vec<(SamplePhase, TraceEvent)> = live
            .iter()
            .enumerate()
            .filter(|(i, _)| sampling.phase(*i as u64) != SamplePhase::Skip)
            .map(|(i, ev)| (sampling.phase(i as u64), *ev))
            .collect();
        assert_eq!(tagged, expected);
        assert!(tagged.iter().any(|(ph, _)| *ph == SamplePhase::Warm));
        assert!(tagged.iter().any(|(ph, _)| *ph == SamplePhase::Measure));
        // Plain drive sees only the Measure subset.
        let mut plain = Vec::new();
        trace
            .sampled_replay(&p, sampling)
            .unwrap()
            .drive(&mut |ev| plain.push(*ev))
            .unwrap();
        let measured: Vec<TraceEvent> = expected
            .iter()
            .filter(|(ph, _)| *ph == SamplePhase::Measure)
            .map(|(_, ev)| *ev)
            .collect();
        assert_eq!(plain, measured);
    }

    #[test]
    fn streaming_replay_is_byte_identical_to_materialized() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let bytes = trace.to_bytes();
        let n = trace.len();
        let limits = [None, Some(1), Some(5), Some(n - 1), Some(n), Some(n + 1)];
        let samplings = [
            None,
            Some(Sampling::new(10, 3)),
            Some(Sampling::new(7, 2).with_warmup(3).with_offset(4)),
        ];
        for limit in limits {
            for sampling in samplings {
                let mut mat = trace.replay(&p).unwrap().with_limit(limit);
                if let Some(s) = sampling {
                    mat = mat.with_sampling(s);
                }
                let mut mat_events = Vec::new();
                let mat_outcome = mat
                    .drive_phased(&mut |ph, ev| mat_events.push((ph, *ev)))
                    .unwrap();

                let mut st = StreamingReplay::new(std::io::Cursor::new(bytes.clone()), &p)
                    .unwrap()
                    .with_limit(limit);
                if let Some(s) = sampling {
                    st = st.with_sampling(s);
                }
                let mut st_events = Vec::new();
                let st_outcome = st
                    .drive_phased(&mut |ph, ev| st_events.push((ph, *ev)))
                    .unwrap();

                assert_eq!(
                    mat_events, st_events,
                    "limit {limit:?} sampling {sampling:?}"
                );
                assert_eq!(mat_outcome, st_outcome, "limit {limit:?}");
            }
        }
    }

    #[test]
    fn streaming_replay_from_file_and_error_paths() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let path = std::env::temp_dir().join(format!("mim-stream-{}.bin", std::process::id()));
        trace.write_to(&path).unwrap();
        let mut events = 0u64;
        let outcome = StreamingReplay::open(&path, &p)
            .unwrap()
            .drive(&mut |_| events += 1)
            .unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(events, trace.len());
        assert_eq!(outcome, trace.outcome());

        // Wrong program: rejected at construction, like Trace::replay.
        let mut other = ProgramBuilder::named("kernel");
        other.li(Reg::R1, 1);
        other.halt();
        let other = other.build();
        assert!(matches!(
            StreamingReplay::new(std::io::Cursor::new(trace.to_bytes()), &other),
            Err(TraceError::ProgramMismatch { .. })
        ));

        // Truncated bytes: error, never a panic — at construction for
        // header truncation, or during the walk for stream truncation.
        let bytes = trace.to_bytes();
        for len in (0..bytes.len()).step_by(7) {
            match StreamingReplay::new(std::io::Cursor::new(bytes[..len].to_vec()), &p) {
                Ok(mut replay) => assert!(replay.drive(&mut |_| {}).is_err(), "len {len}"),
                Err(e) => assert!(matches!(e, TraceError::Corrupt(_)), "len {len}: {e:?}"),
            }
        }
    }

    #[test]
    fn recording_faulting_program_propagates_vm_error() {
        let mut b = ProgramBuilder::named("fault");
        b.li(Reg::R1, 1);
        b.div(Reg::R2, Reg::R1, Reg::R0);
        b.halt();
        let p = b.build();
        assert_eq!(
            Trace::record(&p, None),
            Err(VmError::DivideByZero { pc: 1 })
        );
    }

    #[test]
    fn encoded_size_is_compact() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        // 8 iterations × (1 load + 1 store) = 16 addresses, 8 branch bits.
        assert_eq!(trace.mem_ops(), 16);
        assert_eq!(trace.branches(), 8);
        // The loop branch is taken 7 times and falls through once.
        assert_eq!(trace.taken_branches(), 7);
        // Nearby addresses delta-encode to a handful of bytes each.
        assert!(
            trace.to_bytes().len() < 128,
            "encoding ballooned: {} bytes",
            trace.to_bytes().len()
        );
    }
}
