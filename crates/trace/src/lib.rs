//! # mim-trace — record-once dynamic instruction traces
//!
//! The paper's central trick (§2.1) is separating machine-independent
//! workload behavior from machine-dependent timing. This crate applies
//! that separation to the *whole* stack: each `(workload, size)` is
//! functionally executed **exactly once** (recorded into a [`Trace`]),
//! and every timing consumer — the cycle-accurate pipeline simulator, the
//! sweep profiler, the MLP estimator — replays the recording instead of
//! re-interpreting the program.
//!
//! * [`Trace`] — the compact recording: 1 direction bit per conditional
//!   branch plus 1 effective address per memory operation; everything
//!   else is reconstructed from the static program during replay.
//!   Deterministic byte serialization ([`Trace::to_bytes`] /
//!   [`Trace::write_to`]) persists recordings across processes.
//! * [`TraceSource`] — the stream interface consumers are written
//!   against; [`LiveVm`] (functional execution, the recording backend)
//!   and [`Replay`] (trace replay) both implement it.
//! * [`Sampling`] — systematic (SMARTS-style periodic) sampling of the
//!   replayed stream for `Large` runs.
//!
//! The one recording itself runs on `mim-isa`'s block-compiled engine
//! ([`Trace::record`]'s two streams map directly onto its
//! `cond_branch`/`mem_access` hooks), sustaining ≥5× the per-step
//! interpreter's throughput; replay then streams events ~2.5× faster
//! than interpreted re-execution (no register file, no data memory, no
//! ALU). Both are measured by the `trace_replay_throughput` bench in
//! `mim-bench` and tracked in `BENCH_trace.json` — and, the bigger win,
//! a design-space sweep amortizes the one recording over every design
//! point instead of re-executing per point.
//!
//! ## Example: record once, replay everywhere
//!
//! ```
//! use mim_isa::{ProgramBuilder, Reg};
//! use mim_trace::{LiveVm, Trace, TraceSource};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = ProgramBuilder::named("demo");
//! b.li(Reg::R1, 4);
//! let top = b.here();
//! b.addi(Reg::R1, Reg::R1, -1);
//! b.bne(Reg::R1, Reg::R0, top);
//! b.halt();
//! let p = b.build();
//!
//! // One functional execution...
//! let trace = Trace::record(&p, None)?;
//!
//! // ...then any number of replay passes, each yielding the identical
//! // event stream a live pass would.
//! let mut live = Vec::new();
//! LiveVm::new(&p).drive(&mut |ev| live.push(*ev))?;
//! let mut replayed = Vec::new();
//! trace.replay(&p)?.drive(&mut |ev| replayed.push(*ev))?;
//! assert_eq!(live, replayed);
//!
//! // Recordings serialize to deterministic bytes.
//! let bytes = trace.to_bytes();
//! assert_eq!(Trace::from_bytes(&bytes)?, trace);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod source;
mod trace;

pub use error::TraceError;
pub use source::{LiveVm, Replay, Sampling, TraceSource};
pub use trace::Trace;

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::{Program, ProgramBuilder, Reg, RunOutcome, TraceEvent, VmError};

    /// A small kernel exercising every event shape: ALU, load, store,
    /// taken/not-taken branches, jump, mul.
    fn kernel() -> Program {
        let mut b = ProgramBuilder::named("kernel");
        let data = b.data_words(&[3, 1, 4, 1, 5, 9, 2, 6]);
        b.li(Reg::R1, data as i64);
        b.li(Reg::R2, 0);
        b.li(Reg::R3, 8);
        let top = b.here();
        b.ld(Reg::R4, Reg::R1, 0);
        b.mul(Reg::R5, Reg::R4, Reg::R4);
        b.add(Reg::R2, Reg::R2, Reg::R5);
        b.st(Reg::R2, Reg::R1, 0);
        b.addi(Reg::R1, Reg::R1, 8);
        b.addi(Reg::R3, Reg::R3, -1);
        b.bne(Reg::R3, Reg::R0, top);
        b.halt();
        b.build()
    }

    fn live_events(p: &Program, limit: Option<u64>) -> (Vec<TraceEvent>, RunOutcome) {
        let mut events = Vec::new();
        let outcome = LiveVm::new(p)
            .with_limit(limit)
            .drive(&mut |ev| events.push(*ev))
            .expect("live run");
        (events, outcome)
    }

    #[test]
    fn replay_reproduces_live_stream_and_outcome() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let (live, live_outcome) = live_events(&p, None);
        let mut replayed = Vec::new();
        let outcome = trace
            .replay(&p)
            .unwrap()
            .drive(&mut |ev| replayed.push(*ev))
            .unwrap();
        assert_eq!(live, replayed);
        assert_eq!(live_outcome, outcome);
        assert_eq!(trace.len(), live.len() as u64);
        assert!(trace.halted());
    }

    #[test]
    fn replay_limits_match_vm_limit_semantics() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let n = trace.len();
        // Truncating, exact, and beyond-the-end limits all behave like a
        // live run with the same limit.
        for limit in [1, 5, n - 1, n, n + 1] {
            let (live, live_outcome) = live_events(&p, Some(limit));
            let mut replayed = Vec::new();
            let outcome = trace
                .replay(&p)
                .unwrap()
                .with_limit(Some(limit))
                .drive(&mut |ev| replayed.push(*ev))
                .unwrap();
            assert_eq!(live, replayed, "limit {limit}");
            assert_eq!(live_outcome, outcome, "limit {limit}");
        }
    }

    #[test]
    fn truncated_recording_replays_its_window() {
        let p = kernel();
        let trace = Trace::record(&p, Some(10)).unwrap();
        assert!(!trace.halted());
        assert_eq!(trace.len(), 10);
        let (live, _) = live_events(&p, Some(10));
        let mut replayed = Vec::new();
        let outcome = trace
            .replay(&p)
            .unwrap()
            .drive(&mut |ev| replayed.push(*ev))
            .unwrap();
        assert_eq!(live, replayed);
        assert_eq!(outcome, RunOutcome::LimitReached { instructions: 10 });
    }

    #[test]
    fn serialization_round_trips_deterministically() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let bytes = trace.to_bytes();
        assert_eq!(bytes, trace.to_bytes(), "encoding is deterministic");
        let decoded = Trace::from_bytes(&bytes).unwrap();
        assert_eq!(decoded, trace);
        assert_eq!(decoded.to_bytes(), bytes);
        // The decoded trace still replays.
        let (live, _) = live_events(&p, None);
        let mut replayed = Vec::new();
        decoded
            .replay(&p)
            .unwrap()
            .drive(&mut |ev| replayed.push(*ev))
            .unwrap();
        assert_eq!(live, replayed);
    }

    #[test]
    fn corrupt_bytes_are_rejected_not_panicked() {
        let p = kernel();
        let bytes = Trace::record(&p, None).unwrap().to_bytes();
        assert!(matches!(
            Trace::from_bytes(&bytes[..bytes.len() - 1]),
            Err(TraceError::Corrupt(_))
        ));
        assert!(matches!(
            Trace::from_bytes(b"NOTATRACE"),
            Err(TraceError::Corrupt(_))
        ));
        let mut versioned = bytes.clone();
        versioned[8] = 0xee; // version field
        assert!(matches!(
            Trace::from_bytes(&versioned),
            Err(TraceError::Corrupt(_))
        ));
        // Truncating at every prefix length must error, never panic.
        for len in 0..bytes.len().min(64) {
            assert!(Trace::from_bytes(&bytes[..len]).is_err());
        }
    }

    #[test]
    fn replaying_against_wrong_program_is_rejected() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let mut other = ProgramBuilder::named("kernel"); // same name, different text
        other.li(Reg::R1, 1);
        other.halt();
        let other = other.build();
        assert!(!trace.matches(&other));
        assert!(matches!(
            trace.replay(&other),
            Err(TraceError::ProgramMismatch { .. })
        ));
    }

    #[test]
    fn huge_header_counts_are_rejected_without_allocating() {
        let p = kernel();
        let bytes = Trace::record(&p, None).unwrap().to_bytes();
        // Header layout: magic(8) version(4) flags(1) name_len(4) name
        // text_len(4) fingerprint(8) events(8) taken_bits(8) ...
        let name_len = p.name().len();
        let events_off = 17 + name_len + 4 + 8;
        let taken_off = events_off + 8;
        let mut crafted = bytes.clone();
        crafted[events_off..events_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        crafted[taken_off..taken_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        // Must reject (bitvector larger than input), not abort in the
        // allocator.
        assert!(matches!(
            Trace::from_bytes(&crafted),
            Err(TraceError::Corrupt(_))
        ));
        // Same for an oversized address count with sane branch bits (the
        // kernel's 8 branch bits occupy one 64-bit word after taken_bits).
        let addr_off = taken_off + 8 + 8;
        let mut crafted = bytes;
        crafted[events_off..events_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        crafted[addr_off..addr_off + 8].copy_from_slice(&(1u64 << 62).to_le_bytes());
        assert!(matches!(
            Trace::from_bytes(&crafted),
            Err(TraceError::Corrupt(_))
        ));
    }

    #[test]
    fn renamed_identical_program_still_matches() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let renamed = Program::from_parts("kernel/O3", p.text().to_vec(), p.data().to_vec());
        assert!(trace.matches(&renamed), "fingerprint is content, not name");
        let mut events = 0u64;
        trace
            .replay(&renamed)
            .unwrap()
            .drive(&mut |_| events += 1)
            .unwrap();
        assert_eq!(events, trace.len());
    }

    #[test]
    fn file_round_trip() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let path = std::env::temp_dir().join(format!("mim-trace-{}.bin", std::process::id()));
        trace.write_to(&path).unwrap();
        let back = Trace::read_from(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, trace);
    }

    #[test]
    fn sampling_emits_only_window_events() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        let sampling = Sampling::new(10, 3);
        let (live, _) = live_events(&p, None);
        let expected: Vec<TraceEvent> = live
            .iter()
            .enumerate()
            .filter(|(i, _)| sampling.contains(*i as u64))
            .map(|(_, ev)| *ev)
            .collect();
        let mut sampled = Vec::new();
        let outcome = trace
            .sampled_replay(&p, sampling)
            .unwrap()
            .drive(&mut |ev| sampled.push(*ev))
            .unwrap();
        assert_eq!(sampled, expected);
        // The walk still covers the full stream.
        assert_eq!(outcome.instructions(), trace.len());
        assert!((sampling.fraction() - 0.3).abs() < 1e-12);
        assert!((sampling.scale() - 10.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn recording_faulting_program_propagates_vm_error() {
        let mut b = ProgramBuilder::named("fault");
        b.li(Reg::R1, 1);
        b.div(Reg::R2, Reg::R1, Reg::R0);
        b.halt();
        let p = b.build();
        assert_eq!(
            Trace::record(&p, None),
            Err(VmError::DivideByZero { pc: 1 })
        );
    }

    #[test]
    fn encoded_size_is_compact() {
        let p = kernel();
        let trace = Trace::record(&p, None).unwrap();
        // 8 iterations × (1 load + 1 store) = 16 addresses, 8 branch bits.
        assert_eq!(trace.mem_ops(), 16);
        assert_eq!(trace.branches(), 8);
        // The loop branch is taken 7 times and falls through once.
        assert_eq!(trace.taken_branches(), 7);
        // Nearby addresses delta-encode to a handful of bytes each.
        assert!(
            trace.to_bytes().len() < 128,
            "encoding ballooned: {} bytes",
            trace.to_bytes().len()
        );
    }
}
