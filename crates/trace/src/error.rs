//! Errors raised by trace recording, replay, and decoding.

use std::error::Error;
use std::fmt;

use mim_isa::VmError;

/// Error produced while driving a [`TraceSource`](crate::TraceSource) or
/// decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The program faulted during live functional execution (recording or
    /// a live one-shot pass).
    Vm(VmError),
    /// A trace was replayed against a program it was not recorded from.
    ProgramMismatch {
        /// Name stored in the trace.
        trace: String,
        /// Name of the program handed to replay.
        program: String,
    },
    /// A serialized trace failed to decode, or a replay walked off the
    /// program text (the trace does not describe this program's control
    /// flow).
    Corrupt(String),
    /// A source was driven again after an earlier
    /// [`drive`](crate::TraceSource::drive) already consumed its stream.
    /// The [`TraceSource`](crate::TraceSource) contract is driven-once; a
    /// second drive used to silently report a successful zero-event
    /// outcome, which corrupted any consumer that aggregated it.
    Exhausted {
        /// Name of the exhausted source.
        source: String,
    },
    /// A [`Sampling`](crate::Sampling) plan with impossible geometry was
    /// rejected (`length` must satisfy `0 < length <= period`).
    InvalidSampling {
        /// Requested period, in events.
        period: u64,
        /// Requested window length, in events.
        length: u64,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Vm(e) => write!(f, "functional execution faulted: {e}"),
            TraceError::ProgramMismatch { trace, program } => write!(
                f,
                "trace `{trace}` was not recorded from program `{program}` \
                 (fingerprint mismatch)"
            ),
            TraceError::Corrupt(reason) => write!(f, "corrupt trace: {reason}"),
            TraceError::Exhausted { source } => write!(
                f,
                "trace source `{source}` was already driven (a TraceSource \
                 is driven once; construct a fresh replay for another pass)"
            ),
            TraceError::InvalidSampling { period, length } => write!(
                f,
                "invalid sampling plan: need 0 < length ({length}) <= period ({period})"
            ),
        }
    }
}

impl Error for TraceError {}

impl TraceError {
    /// Unwraps the functional fault inside a live-execution error.
    ///
    /// For drivers of a [`LiveVm`](crate::LiveVm) source — which can raise
    /// nothing but [`TraceError::Vm`] — this converts back to the
    /// [`VmError`] the pre-trace APIs exposed.
    ///
    /// # Panics
    ///
    /// Panics on the replay-only variants.
    pub fn into_vm(self) -> VmError {
        match self {
            TraceError::Vm(e) => e,
            other => panic!("live functional execution raised a replay error: {other}"),
        }
    }
}

impl From<VmError> for TraceError {
    fn from(e: VmError) -> TraceError {
        TraceError::Vm(e)
    }
}
