//! Errors raised by trace recording, replay, and decoding.

use std::error::Error;
use std::fmt;

use mim_isa::VmError;

/// Error produced while driving a [`TraceSource`](crate::TraceSource) or
/// decoding a serialized trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The program faulted during live functional execution (recording or
    /// a live one-shot pass).
    Vm(VmError),
    /// A trace was replayed against a program it was not recorded from.
    ProgramMismatch {
        /// Name stored in the trace.
        trace: String,
        /// Name of the program handed to replay.
        program: String,
    },
    /// A serialized trace failed to decode, or a replay walked off the
    /// program text (the trace does not describe this program's control
    /// flow).
    Corrupt(String),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Vm(e) => write!(f, "functional execution faulted: {e}"),
            TraceError::ProgramMismatch { trace, program } => write!(
                f,
                "trace `{trace}` was not recorded from program `{program}` \
                 (fingerprint mismatch)"
            ),
            TraceError::Corrupt(reason) => write!(f, "corrupt trace: {reason}"),
        }
    }
}

impl Error for TraceError {}

impl TraceError {
    /// Unwraps the functional fault inside a live-execution error.
    ///
    /// For drivers of a [`LiveVm`](crate::LiveVm) source — which can raise
    /// nothing but [`TraceError::Vm`] — this converts back to the
    /// [`VmError`] the pre-trace APIs exposed.
    ///
    /// # Panics
    ///
    /// Panics on the replay-only variants.
    pub fn into_vm(self) -> VmError {
        match self {
            TraceError::Vm(e) => e,
            other => panic!("live functional execution raised a replay error: {other}"),
        }
    }
}

impl From<VmError> for TraceError {
    fn from(e: VmError) -> TraceError {
        TraceError::Vm(e)
    }
}
