//! # mim-pipeline — cycle-accurate superscalar in-order simulation
//!
//! The "detailed simulation" baseline of the reproduction (the paper's role
//! for M5): a cycle-accurate timing model of the W-wide in-order pipeline
//! described in paper §2.2, sharing its cache, TLB and branch-predictor
//! components with the profiler so that miss counts agree exactly and only
//! *timing* differs between model and simulation.
//!
//! The simulator models:
//!
//! * a `D`-stage front end feeding a W-wide execute stage, with front-end
//!   capacity backpressure;
//! * full forwarding and **stall-on-use** in-order issue (issue stops at
//!   the first instruction with an unavailable operand);
//! * non-pipelined multi-cycle multiply/divide that block all younger
//!   instructions (in-order commit, §2.2);
//! * loads/stores resolving in the memory stage (load-use bubble), with
//!   blocking L1 misses that stall the memory stage for the L2 hit or
//!   memory latency, plus TLB walks;
//! * I-cache misses that stall fetch; the taken-branch fetch bubble; and
//!   branch mispredictions that squash the front end (resolution in EX,
//!   refill of `D` stages).
//!
//! ## Example
//!
//! ```
//! use mim_core::MachineConfig;
//! use mim_pipeline::PipelineSim;
//! use mim_workloads::{mibench, WorkloadSize};
//!
//! # fn main() -> Result<(), mim_isa::VmError> {
//! let machine = MachineConfig::default_config();
//! let program = mibench::sha().program(WorkloadSize::Tiny);
//! let result = PipelineSim::new(&machine).simulate(&program)?;
//! assert!(result.cpi() >= 0.25); // cannot beat N/W on a 4-wide core
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sim;

pub use sim::{PipelineSim, SimIdealization, SimResult};
