//! The timing model.
//!
//! Implemented as a single in-order pass over the dynamic instruction
//! stream that propagates timing constraints (fetch cycle, execute-entry
//! cycle, memory-stage occupancy, operand availability). For an in-order
//! pipeline this is cycle-exact and much faster than a stage-by-stage
//! simulator, because every instruction's stage timings follow from a
//! handful of max-constraints over its predecessors.

use mim_bpred::BranchPredictor;
use mim_cache::{Hierarchy, MemAccessKind, MemLevel, MissCounts};
use mim_core::{CpiTimeline, MachineConfig, StackComponent};
use mim_isa::{InstClass, Program, TraceEvent, VmError, NUM_REGS};
use mim_trace::{LiveVm, SamplePhase, TraceError, TraceSource};

/// Statistics of a sampled simulation run
/// ([`PipelineSim::simulate_sampled`]): the per-unit CPI population behind
/// the scaled point estimate, summarized as a CLT 95% confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct SampledStats {
    /// Detailed sample units measured.
    pub units: u64,
    /// Instructions simulated in detail (inside sample windows).
    pub measured_instructions: u64,
    /// Cycles charged to measured instructions.
    pub measured_cycles: u64,
    /// The CPI point estimate: mean of per-unit CPIs (the SMARTS
    /// estimator). [`SimResult::cycles`] is this scaled by the full
    /// walked stream length.
    pub cpi: f64,
    /// Half-width ε of the 95% confidence interval on [`cpi`]
    /// (`±1.96·s/√n` over per-unit CPIs; 0 when fewer than two units).
    pub ci_half_width: f64,
    /// Fraction of the walked stream measured in detail.
    pub fraction: f64,
}

/// Outcome of a detailed simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimResult {
    /// Workload name.
    pub name: String,
    /// Retired instructions (for sampled runs: the full walked stream,
    /// not just the measured windows).
    pub instructions: u64,
    /// Total execution cycles (for sampled runs: the scaled estimate).
    pub cycles: u64,
    /// Cache/TLB miss counters observed during the run (sampled runs
    /// count measured events only; warming updates state, not counters).
    pub misses: MissCounts,
    /// Conditional branches executed (measured events only when sampled).
    pub branches: u64,
    /// Mispredicted conditional branches.
    pub mispredicts: u64,
    /// Correctly predicted taken branches.
    pub taken_correct: u64,
    /// Sampling statistics (`None` for full, unsampled runs).
    pub sampling: Option<SampledStats>,
    /// Per-interval CPI-stack timeline (`None` unless requested via
    /// [`PipelineSim::with_timeline`]). Strictly out-of-band: enabling it
    /// changes no other field.
    pub timeline: Option<CpiTimeline>,
}

impl SimResult {
    /// Cycles per instruction.
    pub fn cpi(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.cycles as f64 / self.instructions as f64
        }
    }

    /// Execution time in seconds at the given frequency.
    pub fn time_seconds(&self, frequency_ghz: f64) -> f64 {
        mim_core::cycles_to_seconds(self.cycles as f64, frequency_ghz)
    }
}

/// Counterfactual knobs: selectively idealize one pipeline mechanism while
/// keeping everything else (including cache/predictor state evolution and
/// the retired instruction stream) bit-identical.
///
/// Differential validation (`mim-validate`) measures the simulator's
/// *effective* penalty of mechanism X as `cycles(full) - cycles(ideal X)`
/// and compares it against the mechanistic model's closed-form term for X,
/// attributing model-vs-simulation CPI error to the term whose
/// approximation diverges most. Cache and predictor structures are still
/// accessed and updated under every knob, so idealizing one mechanism
/// never perturbs the others' behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimIdealization {
    /// Instruction fetch never stalls (L1I/ITLB misses cost zero cycles).
    pub perfect_icache: bool,
    /// Loads and stores complete with the L1 hit latency of one cycle
    /// (D-cache/DTLB misses cost zero extra cycles).
    pub perfect_dcache: bool,
    /// Branch directions are predicted perfectly; taken branches still pay
    /// their fetch bubble (that is a front-end redirect, not a prediction).
    pub oracle_branches: bool,
    /// Correctly predicted taken branches and unconditional jumps redirect
    /// fetch for free (no one-cycle bubble). Combined with
    /// `oracle_branches` this removes every cycle the model's branch terms
    /// (Eq. 4 plus the taken-branch hit penalty) account for.
    pub free_taken_bubbles: bool,
    /// Multiply/divide execute in one pipelined cycle like ALU ops.
    pub unit_latencies: bool,
    /// Operand dependencies never delay issue (register values are
    /// forwarded with zero latency from any distance).
    pub no_dependencies: bool,
}

impl SimIdealization {
    /// No idealization: the full detailed simulation.
    pub fn none() -> SimIdealization {
        SimIdealization::default()
    }
}

/// Cycle-accurate simulator for one machine configuration.
#[derive(Debug, Clone)]
pub struct PipelineSim {
    machine: MachineConfig,
    ideal: SimIdealization,
    timeline: Option<u64>,
}

impl PipelineSim {
    /// Creates a simulator.
    ///
    /// # Panics
    ///
    /// Panics if the machine configuration is invalid.
    pub fn new(machine: &MachineConfig) -> PipelineSim {
        machine
            .validate()
            .expect("machine configuration must be valid");
        PipelineSim {
            machine: machine.clone(),
            ideal: SimIdealization::none(),
            timeline: None,
        }
    }

    /// Selectively idealizes pipeline mechanisms (counterfactual runs for
    /// per-term error attribution).
    pub fn with_idealization(mut self, ideal: SimIdealization) -> PipelineSim {
        self.ideal = ideal;
        self
    }

    /// Requests a [`CpiTimeline`] on [`SimResult`]: cycle attribution per
    /// `interval`-instruction bucket of the walked stream (minimum 1).
    /// Off by default; purely additive — every other result field is
    /// unchanged.
    ///
    /// Attribution is first-order and event-charged: each miss/stall
    /// event charges its nominal latency to its component within the
    /// interval it retires in, each interval's row is clamped to the
    /// cycles the interval actually took (overlapped latencies trim in
    /// canonical component order), and the un-attributed remainder —
    /// including dependence stalls — lands in
    /// [`Base`](StackComponent::Base). Integer cycles end to end, so
    /// timelines are byte-deterministic across runs and thread counts.
    pub fn with_timeline(mut self, interval: u64) -> PipelineSim {
        self.timeline = Some(interval.max(1));
        self
    }

    /// The simulated machine.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// Simulates the program to completion.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] if the program faults functionally.
    pub fn simulate(&self, program: &Program) -> Result<SimResult, VmError> {
        self.simulate_limit(program, None)
    }

    /// Simulates at most `limit` instructions (or to completion), driving
    /// a live functional execution.
    ///
    /// Design-space sweeps should record the workload once
    /// (`mim_trace::Trace::record`) and call
    /// [`simulate_source`](PipelineSim::simulate_source) with a replay
    /// instead — the simulation is then a pure timing pass.
    ///
    /// # Errors
    ///
    /// Propagates [`VmError`] if the program faults functionally.
    pub fn simulate_limit(
        &self,
        program: &Program,
        limit: Option<u64>,
    ) -> Result<SimResult, VmError> {
        self.simulate_source(&mut LiveVm::new(program).with_limit(limit))
            .map_err(TraceError::into_vm)
    }

    /// Simulates the dynamic instruction stream produced by any
    /// [`TraceSource`] — the core timing pass, functionally decoupled.
    ///
    /// With a [`Replay`](mim_trace::Replay) source this performs **no**
    /// functional execution: the pipeline timing model consumes the
    /// recorded stream directly.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`TraceError`] (a functional fault for live
    /// sources, a corrupt recording for replays).
    pub fn simulate_source<S: TraceSource + ?Sized>(
        &self,
        source: &mut S,
    ) -> Result<SimResult, TraceError> {
        let name = source.name().to_string();
        let lat = Latencies::of(&self.machine);
        let mut hierarchy = Hierarchy::new(self.machine.hierarchy.clone());
        let mut predictor: Box<dyn BranchPredictor> = self.machine.predictor.build();
        let mut st = PipeState::new(lat.cap);
        let mut ctr = Counters::default();
        let mut tl = self.timeline.map(TimelineAcc::new);

        source.drive(&mut |ev| {
            self.step(
                &lat,
                &mut st,
                &mut hierarchy,
                predictor.as_mut(),
                &mut ctr,
                &mut tl,
                ev,
            );
            if let Some(acc) = tl.as_mut() {
                acc.tick(st.watermark());
            }
        })?;

        // Drain: memory + writeback stages after the last completion event.
        let cycles = st.watermark() + 2;
        Ok(SimResult {
            name,
            instructions: ctr.retired,
            cycles,
            misses: hierarchy.counts(),
            branches: ctr.branches,
            mispredicts: ctr.mispredicts,
            taken_correct: ctr.taken_correct,
            sampling: None,
            timeline: tl.map(|acc| acc.finish(st.watermark())),
        })
    }

    /// Sampled timing simulation with functional warming: the
    /// statistically rigorous path for `Large` and beyond-Large streams.
    ///
    /// Drives the source's phased stream
    /// ([`TraceSource::drive_phased`]): [`SamplePhase::Warm`] events
    /// update cache-hierarchy and branch-predictor **state** only
    /// ([`Hierarchy::warm`], [`BranchPredictor::warm`] — no timing, no
    /// counters), [`SamplePhase::Measure`] events run the full detailed
    /// timing model, and skipped events are never materialized. Pipeline
    /// timing state is continuous across sample units (the windows are
    /// simulated as if concatenated), so per-unit cycle counts carry no
    /// per-unit pipeline-fill/drain bias; cache and predictor state
    /// persist throughout and are kept warm between windows by the plan's
    /// warm-up events.
    ///
    /// Per-unit CPIs feed the SMARTS-style estimate: the reported
    /// [`SimResult::cycles`] is the mean per-unit CPI scaled by the full
    /// walked stream length, and [`SimResult::sampling`] carries the CLT
    /// 95% confidence half-width ±ε over the units.
    ///
    /// With a source that has no sampling plan this degenerates to a full
    /// simulation measured as one unit.
    ///
    /// # Errors
    ///
    /// Propagates the source's [`TraceError`], like
    /// [`simulate_source`](PipelineSim::simulate_source).
    pub fn simulate_sampled<S: TraceSource + ?Sized>(
        &self,
        source: &mut S,
    ) -> Result<SimResult, TraceError> {
        let name = source.name().to_string();
        let lat = Latencies::of(&self.machine);
        let mut hierarchy = Hierarchy::new(self.machine.hierarchy.clone());
        let mut predictor: Box<dyn BranchPredictor> = self.machine.predictor.build();
        let mut st = PipeState::new(lat.cap);
        let mut ctr = Counters::default();

        // A sample unit closes after `length` measured events (window
        // end), or at the first warm event of the next window for plans
        // whose windows the stream truncates, or at stream end.
        let plan = source.sampling();
        let unit_len = plan.map_or(u64::MAX, |s| s.length());
        let mut unit_cpis: Vec<f64> = Vec::new();
        let mut unit_insts: u64 = 0;
        let mut unit_base: u64 = 0; // cycle watermark at unit start
        let mut measured_cycles: u64 = 0;
        let mut tl = self.timeline.map(TimelineAcc::new);
        // Walked-stream position of the next delivered event. Skipped
        // events are never delivered, but their positions are plan
        // arithmetic, so the timeline's interval boundaries stay aligned
        // with the full-simulation timeline of the same stream.
        let mut pos: u64 = 0;

        macro_rules! close_unit {
            () => {
                let mark = st.watermark();
                unit_cpis.push((mark - unit_base) as f64 / unit_insts as f64);
                measured_cycles += mark - unit_base;
                unit_base = mark;
                unit_insts = 0;
            };
        }

        let outcome = source.drive_phased(&mut |phase, ev| {
            if let (Some(acc), Some(plan)) = (tl.as_mut(), plan.as_ref()) {
                while plan.phase(pos) == SamplePhase::Skip {
                    pos += 1;
                    acc.tick(st.watermark());
                }
            }
            match phase {
                SamplePhase::Skip => {}
                SamplePhase::Warm => {
                    if unit_insts > 0 {
                        close_unit!();
                    }
                    hierarchy.warm(MemAccessKind::Fetch, Program::inst_addr(ev.pc));
                    match ev.class {
                        InstClass::Load => {
                            hierarchy.warm(MemAccessKind::Load, ev.eff_addr.expect("load address"));
                        }
                        InstClass::Store => {
                            hierarchy
                                .warm(MemAccessKind::Store, ev.eff_addr.expect("store address"));
                        }
                        InstClass::CondBranch => {
                            predictor.warm(ev.pc, ev.taken == Some(true));
                        }
                        _ => {}
                    }
                }
                SamplePhase::Measure => {
                    self.step(
                        &lat,
                        &mut st,
                        &mut hierarchy,
                        predictor.as_mut(),
                        &mut ctr,
                        &mut tl,
                        ev,
                    );
                    unit_insts += 1;
                    if unit_insts == unit_len {
                        close_unit!();
                    }
                }
            }
            if let Some(acc) = tl.as_mut() {
                pos += 1;
                acc.tick(st.watermark());
            }
        })?;
        if unit_insts > 0 {
            // Final (possibly truncated) unit at stream end.
            let mark = st.watermark();
            unit_cpis.push((mark - unit_base) as f64 / unit_insts as f64);
            measured_cycles += mark - unit_base;
        }

        let walked = outcome.instructions();
        if let Some(acc) = tl.as_mut() {
            // Trailing skipped positions after the last delivered event.
            while pos < walked {
                pos += 1;
                acc.tick(st.watermark());
            }
        }
        let units = unit_cpis.len() as u64;
        let mean = if units == 0 {
            0.0
        } else {
            unit_cpis.iter().sum::<f64>() / units as f64
        };
        let half = if units >= 2 {
            let var = unit_cpis
                .iter()
                .map(|x| (x - mean) * (x - mean))
                .sum::<f64>()
                / (units - 1) as f64;
            1.96 * (var / units as f64).sqrt()
        } else {
            0.0
        };
        Ok(SimResult {
            name,
            instructions: walked,
            cycles: (mean * walked as f64).round() as u64,
            misses: hierarchy.counts(),
            branches: ctr.branches,
            mispredicts: ctr.mispredicts,
            taken_correct: ctr.taken_correct,
            sampling: Some(SampledStats {
                units,
                measured_instructions: ctr.retired,
                measured_cycles,
                cpi: mean,
                ci_half_width: half,
                fraction: if walked == 0 {
                    0.0
                } else {
                    ctr.retired as f64 / walked as f64
                },
            }),
            timeline: tl.map(|acc| acc.finish(st.watermark())),
        })
    }

    /// One instruction through the timing kernel: fetch, execute entry,
    /// per-class effects. This is the detailed path shared by full and
    /// sampled simulation; all pipeline state lives in `st` so callers
    /// control its continuity. When a timeline accumulator is supplied,
    /// miss/stall events charge their nominal penalties to it (interval
    /// bookkeeping stays with the caller).
    #[allow(clippy::too_many_arguments)]
    fn step(
        &self,
        lat: &Latencies,
        st: &mut PipeState,
        hierarchy: &mut Hierarchy,
        predictor: &mut dyn BranchPredictor,
        ctr: &mut Counters,
        tl: &mut Option<TimelineAcc>,
        ev: &TraceEvent,
    ) {
        ctr.retired += 1;
        if let Some(acc) = tl.as_mut() {
            acc.measured();
        }
        st.seen += 1;
        let idx = (st.seen - 1) as usize % lat.cap;

        // ---------------- fetch ------------------------------------------
        let mut fmin = st.fetch_min;
        if st.seen > lat.cap as u64 {
            fmin = fmin.max(st.ex_ring[idx]); // backpressure
        }
        if st.fetch_slots >= lat.w || fmin > st.fetch_cycle {
            st.fetch_cycle = fmin.max(st.fetch_cycle + u64::from(st.fetch_slots > 0));
            st.fetch_slots = 0;
        }
        // I-cache / ITLB access in program order.
        let (level, itlb_miss) = hierarchy.access(MemAccessKind::Fetch, Program::inst_addr(ev.pc));
        let mut stall = match level {
            MemLevel::L1 => 0,
            MemLevel::L2 => lat.l2,
            MemLevel::Memory => lat.mem,
        };
        if itlb_miss {
            stall += lat.tlb;
        }
        if self.ideal.perfect_icache {
            stall = 0;
        }
        if stall > 0 {
            if let Some(acc) = tl.as_mut() {
                match level {
                    MemLevel::L1 => {}
                    MemLevel::L2 => acc.charge(StackComponent::IL2Access, lat.l2),
                    MemLevel::Memory => acc.charge(StackComponent::IL2Miss, lat.mem),
                }
                if itlb_miss {
                    acc.charge(StackComponent::TlbMiss, lat.tlb);
                }
            }
            st.fetch_cycle += stall;
            st.fetch_slots = 0;
        }
        let f = st.fetch_cycle;
        st.fetch_slots += 1;

        // ---------------- execute entry ----------------------------------
        let mut earliest = f + lat.depth;
        if !self.ideal.no_dependencies {
            for src in ev.sources.into_iter().flatten() {
                earliest = earliest.max(st.avail[src.index()]);
            }
        }
        let t;
        // Stages shift as units (paper §2.2): instructions from
        // different fetch groups never share an issue cycle, so
        // taken-branch bubbles and miss-truncated fetch groups keep
        // their slot cost through the pipeline.
        if st.group_cycle != u64::MAX
            && earliest <= st.group_cycle
            && st.group_count < lat.w
            && !st.group_blocked
        {
            // Join the current issue group.
            t = st.group_cycle;
            st.group_count += 1;
        } else {
            // Start a new group.
            t = earliest
                .max(st.ex_free_at)
                .max(if st.group_cycle == u64::MAX {
                    0
                } else {
                    st.group_cycle + 1
                });
            st.group_cycle = t;
            st.group_count = 1;
            st.group_blocked = false;
            st.group_leave = (t + 1).max(st.mem_busy_until);
            st.group_mem_extra = 0;
            st.ex_free_at = st.ex_free_at.max(st.group_leave);
        }
        st.ex_ring[idx] = t;
        let mut completion = t + 1;

        // ---------------- per-class effects --------------------------------
        match ev.class {
            // Under unit_latencies, mul/div fall through to the ALU
            // arm below.
            InstClass::Mul | InstClass::Div if !self.ideal.unit_latencies => {
                let l = if ev.class == InstClass::Mul {
                    lat.mul
                } else {
                    lat.div
                };
                if let Some(dst) = ev.dst {
                    st.avail[dst.index()] = t + l;
                }
                if let Some(acc) = tl.as_mut() {
                    let component = if ev.class == InstClass::Mul {
                        StackComponent::Mul
                    } else {
                        StackComponent::Div
                    };
                    acc.charge(component, l.saturating_sub(1));
                }
                // Non-pipelined: blocks EX for the full latency and, by
                // in-order commit, all younger instructions.
                st.ex_free_at = st.ex_free_at.max(t + l);
                st.group_blocked = true;
                completion = t + l;
            }
            InstClass::Load | InstClass::Store => {
                let kind = if ev.class == InstClass::Load {
                    MemAccessKind::Load
                } else {
                    MemAccessKind::Store
                };
                let (dlevel, dtlb_miss) =
                    hierarchy.access(kind, ev.eff_addr.expect("memory op has address"));
                let mut l = match dlevel {
                    MemLevel::L1 => lat.l1d,
                    MemLevel::L2 => lat.l2,
                    MemLevel::Memory => lat.mem,
                };
                if dtlb_miss {
                    l += lat.tlb;
                }
                if self.ideal.perfect_dcache {
                    l = 1;
                } else if let Some(acc) = tl.as_mut() {
                    match dlevel {
                        MemLevel::L1 => {
                            acc.charge(StackComponent::L1HitExtra, lat.l1d.saturating_sub(1));
                        }
                        MemLevel::L2 => acc.charge(StackComponent::DL2Access, lat.l2),
                        MemLevel::Memory => acc.charge(StackComponent::DL2Miss, lat.mem),
                    }
                    if dtlb_miss {
                        acc.charge(StackComponent::TlbMiss, lat.tlb);
                    }
                }
                // MEM entry: the group's EX-exit plus any misses already
                // serialized within this group.
                let mem_entry = st.group_leave + st.group_mem_extra;
                if l > 1 {
                    st.group_mem_extra += l;
                    st.mem_busy_until = st.mem_busy_until.max(mem_entry + l);
                } else {
                    st.mem_busy_until = st.mem_busy_until.max(mem_entry + 1);
                }
                if let Some(dst) = ev.dst {
                    st.avail[dst.index()] = mem_entry + l;
                }
                completion = mem_entry + l;
            }
            InstClass::CondBranch => {
                ctr.branches += 1;
                let taken = ev.taken == Some(true);
                let pred = if self.ideal.oracle_branches {
                    taken
                } else {
                    predictor.predict(ev.pc)
                };
                predictor.update(ev.pc, taken);
                if pred != taken {
                    ctr.mispredicts += 1;
                    if let Some(acc) = tl.as_mut() {
                        // First-order flush cost: the front-end refill.
                        acc.charge(StackComponent::BranchMiss, lat.depth);
                    }
                    // Squash: fetch resumes after resolution in EX.
                    st.fetch_min = st.fetch_min.max(t + 1);
                    st.fetch_slots = lat.w; // current fetch group ends
                } else if taken {
                    ctr.taken_correct += 1;
                    // Correct taken prediction: one fetch bubble.
                    if !self.ideal.free_taken_bubbles {
                        if let Some(acc) = tl.as_mut() {
                            acc.charge(StackComponent::TakenBranch, 1);
                        }
                        st.fetch_min = st.fetch_min.max(f + 2);
                        st.fetch_slots = lat.w;
                    }
                }
            }
            InstClass::Jump => {
                // Unconditional: always taken, one fetch bubble.
                if !self.ideal.free_taken_bubbles {
                    if let Some(acc) = tl.as_mut() {
                        acc.charge(StackComponent::TakenBranch, 1);
                    }
                    st.fetch_min = st.fetch_min.max(f + 2);
                    st.fetch_slots = lat.w;
                }
            }
            _ => {
                if let Some(dst) = ev.dst {
                    st.avail[dst.index()] = t + 1;
                }
            }
        }
        st.last_completion = st.last_completion.max(completion);
    }
}

/// Machine-derived latency constants for the timing kernel.
struct Latencies {
    w: u64,
    depth: u64,
    l2: u64,
    mem: u64,
    tlb: u64,
    mul: u64,
    div: u64,
    l1d: u64,
    /// Front-end occupancy bound: the D front-end stages hold at most
    /// D*W instructions in flight ahead of execute (Little's law: this
    /// is exactly the occupancy needed to sustain W instructions per
    /// cycle through a D-deep front end). An instruction can be fetched
    /// only once the instruction `cap` ahead of it has entered execute.
    cap: usize,
}

impl Latencies {
    fn of(m: &MachineConfig) -> Latencies {
        let w = u64::from(m.width);
        let depth = u64::from(m.frontend_depth);
        Latencies {
            w,
            depth,
            l2: u64::from(m.l2_hit_cycles()),
            mem: u64::from(m.mem_cycles()),
            tlb: u64::from(m.tlb_walk_cycles),
            mul: u64::from(m.mul_latency),
            div: u64::from(m.div_latency),
            l1d: u64::from(m.l1_hit_cycles),
            cap: (depth * w) as usize,
        }
    }
}

/// The timing kernel's pipeline state: fetch, issue-group, and
/// memory-stage occupancy constraints. One instance spans a full run;
/// sampled runs keep it continuous across sample units (the measured
/// windows are simulated as if concatenated) and read per-unit cycles off
/// [`watermark`](PipeState::watermark) deltas.
struct PipeState {
    fetch_cycle: u64, // cycle of the group being filled
    fetch_slots: u64, // instructions fetched in that group
    fetch_min: u64,   // earliest allowed next fetch (redirects)
    ex_ring: Vec<u64>,
    avail: [u64; NUM_REGS], // operand availability for EX entry
    group_cycle: u64,       // EX cycle of current issue group
    group_count: u64,
    group_blocked: bool,  // mul/div issued: no younger joins
    group_leave: u64,     // when current group exits EX to MEM
    group_mem_extra: u64, // serialized intra-group misses
    ex_free_at: u64,      // earliest start of the next group
    mem_busy_until: u64,  // memory stage availability
    last_completion: u64,
    seen: u64, // instructions through the kernel (ring index)
}

impl PipeState {
    fn new(cap: usize) -> PipeState {
        PipeState {
            fetch_cycle: 0,
            fetch_slots: 0,
            fetch_min: 0,
            ex_ring: vec![0; cap],
            avail: [0u64; NUM_REGS],
            group_cycle: u64::MAX,
            group_count: 0,
            group_blocked: false,
            group_leave: 0,
            group_mem_extra: 0,
            ex_free_at: 0,
            mem_busy_until: 0,
            last_completion: 0,
            seen: 0,
        }
    }

    /// The monotone cycle high-water mark: every charged cycle is at or
    /// below it. Full runs report `watermark() + 2` (memory + writeback
    /// drain); sampled runs difference it at unit boundaries, so the
    /// drain constant cancels out of per-unit CPIs.
    fn watermark(&self) -> u64 {
        self.last_completion.max(self.mem_busy_until)
    }
}

/// Event-count statistics accumulated over the measured stream.
#[derive(Default)]
struct Counters {
    branches: u64,
    mispredicts: u64,
    taken_correct: u64,
    retired: u64,
}

/// Builds a [`CpiTimeline`] during simulation: per-interval event-charged
/// penalties reconciled against the pipeline's watermark deltas.
///
/// `tick` advances the *walked* position (interval boundaries);
/// `measured`/`charge` record the instructions and penalties the detailed
/// kernel actually simulated. For a full run walked == measured; for a
/// sampled run only in-window instructions measure, keeping interval
/// indices aligned with the full run's.
struct TimelineAcc {
    timeline: CpiTimeline,
    interval: u64,
    cur: [u64; StackComponent::COUNT],
    cur_insts: u64,
    walked: u64,
    last_watermark: u64,
}

impl TimelineAcc {
    fn new(interval: u64) -> TimelineAcc {
        let interval = interval.max(1);
        TimelineAcc {
            timeline: CpiTimeline::new(interval),
            interval,
            cur: [0; StackComponent::COUNT],
            cur_insts: 0,
            walked: 0,
            last_watermark: 0,
        }
    }

    /// Charges `cycles` of nominal penalty to `component` in the current
    /// interval.
    fn charge(&mut self, component: StackComponent, cycles: u64) {
        self.cur[component.index()] += cycles;
    }

    /// Counts one instruction simulated in detail.
    fn measured(&mut self) {
        self.cur_insts += 1;
    }

    /// Advances one walked position; closes the interval at the boundary
    /// using the current cycle watermark.
    fn tick(&mut self, mark: u64) {
        self.walked += 1;
        if self.walked == self.interval {
            self.flush(mark);
        }
    }

    /// Closes the current interval: the row's total is exactly the
    /// watermark delta. Event-charged penalties can overcount when
    /// latencies hide under one another, so charges are trimmed in
    /// canonical component order to fit; the un-attributed remainder
    /// (dependence stalls included) lands in `Base`.
    fn flush(&mut self, mark: u64) {
        let delta = mark - self.last_watermark;
        let mut row = [0u64; StackComponent::COUNT];
        let mut remaining = delta;
        for (slot, &charged) in row.iter_mut().zip(&self.cur) {
            let take = charged.min(remaining);
            *slot = take;
            remaining -= take;
        }
        row[StackComponent::Base.index()] += remaining;
        self.timeline.push_row(self.cur_insts, row);
        self.last_watermark = mark;
        self.cur = [0; StackComponent::COUNT];
        self.cur_insts = 0;
        self.walked = 0;
    }

    /// Closes any partial interval and returns the finished timeline.
    fn finish(mut self, mark: u64) -> CpiTimeline {
        if self.walked > 0 || self.cur_insts > 0 {
            self.flush(mark);
        }
        self.timeline
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_isa::{Program, ProgramBuilder, Reg::*};

    fn machine(width: u32) -> MachineConfig {
        MachineConfig {
            width,
            ..MachineConfig::default_config()
        }
    }

    /// Cycles spent on cache/TLB misses (model-style first-order estimate),
    /// used to factor cold-cache effects out of microbenchmark expectations.
    fn miss_cycles(r: &SimResult, m: &MachineConfig) -> f64 {
        let l2 = f64::from(m.l2_hit_cycles());
        let mem = f64::from(m.mem_cycles());
        let tlb = f64::from(m.tlb_walk_cycles);
        let c = &r.misses;
        (c.l1i_l2_hits() + c.l1d_l2_hits()) as f64 * l2
            + (c.l2i_misses + c.l2d_misses) as f64 * mem
            + (c.itlb_misses + c.dtlb_misses) as f64 * tlb
    }

    fn adjusted_cycles(r: &SimResult, m: &MachineConfig) -> f64 {
        r.cycles as f64 - miss_cycles(r, m)
    }

    #[test]
    fn ideal_code_approaches_full_width() {
        // A warm loop of independent ALU ops sustains close to W per
        // cycle; the loop's taken branch adds a bubble per iteration.
        let p = looped("ideal", |b| {
            for i in 0..96usize {
                let dst = mim_isa::Reg::from_index(1 + (i % 24)).unwrap();
                b.li(dst, i as i64);
            }
        });
        for w in [1u32, 2, 4] {
            let m = machine(w);
            let r = PipelineSim::new(&m).simulate(&p).unwrap();
            // Per iteration: 98 instructions at width W, plus ~2 cycles of
            // loop-branch bubble/redirect.
            let ideal = 200.0 * (98.0 / f64::from(w) + 2.0);
            assert!(
                (r.cycles as f64 - ideal).abs() <= ideal * 0.08 + 100.0,
                "W={w}: {} cycles vs ideal {ideal}",
                r.cycles
            );
        }
    }

    /// Wraps `body` in a 200-iteration loop so the I-cache warms up after
    /// the first pass and cold-miss effects become negligible.
    fn looped(name: &str, body: impl Fn(&mut ProgramBuilder)) -> Program {
        let mut b = ProgramBuilder::named(name);
        b.li(R30, 0);
        b.li(R31, 200);
        let top = b.here();
        body(&mut b);
        b.addi(R30, R30, 1);
        b.blt(R30, R31, top);
        b.halt();
        b.build()
    }

    #[test]
    fn dependent_chain_serializes_regardless_of_width() {
        // 50 dependent adds per iteration: a serial chain is ~1 IPC no
        // matter the width.
        let p = looped("chain", |b| {
            for _ in 0..50 {
                b.addi(R1, R1, 1);
            }
        });
        let r1 = PipelineSim::new(&machine(1)).simulate(&p).unwrap();
        let r4 = PipelineSim::new(&machine(4)).simulate(&p).unwrap();
        assert!(
            r4.cycles >= 200 * 50,
            "chain broke serialization: {}",
            r4.cycles
        );
        let rel = (r4.cycles as f64 - r1.cycles as f64).abs() / (r1.cycles as f64);
        assert!(
            rel < 0.1,
            "width changed serial chain time: {} vs {}",
            r1.cycles,
            r4.cycles
        );
    }

    #[test]
    fn multiply_latency_is_exposed() {
        // 20 dependent multiplies per iteration ≈ 20 * mul_latency cycles.
        let p = looped("mulchain", |b| {
            b.li(R2, 1);
            for _ in 0..20 {
                b.mul(R1, R1, R2);
            }
        });
        let m = machine(4);
        let r = PipelineSim::new(&m).simulate(&p).unwrap();
        let expected = 200.0 * 20.0 * f64::from(m.mul_latency);
        assert!(
            (r.cycles as f64 - expected).abs() / expected < 0.1,
            "{} cycles vs expected ~{expected}",
            r.cycles
        );
    }

    #[test]
    fn independent_multiplies_still_block_in_order_pipe() {
        // Non-pipelined multiplier + in-order commit: independent muls
        // serialize too.
        let p = looped("muls", |b| {
            b.li(R1, 1);
            b.li(R2, 1);
            for i in 0..20usize {
                let dst = mim_isa::Reg::from_index(3 + (i % 20)).unwrap();
                b.mul(dst, R1, R2);
            }
        });
        let m = machine(4);
        let r = PipelineSim::new(&m).simulate(&p).unwrap();
        assert!(r.cycles as f64 >= 200.0 * 20.0 * f64::from(m.mul_latency) * 0.95);
    }

    #[test]
    fn load_use_bubble_on_scalar_pipe() {
        // ld; use costs 3 cycles/pair at W=1 (1 bubble); separating the
        // pair with an independent instruction hides the bubble (3 cycles
        // for 3 instructions).
        let with_use = looped("loaduse", |b| {
            b.data_words(&[1, 2, 3, 4]);
            b.li(R1, 0);
            for _ in 0..20 {
                b.ld(R2, R1, 0);
                b.addi(R3, R2, 1);
            }
        });
        let separated = looped("separated", |b| {
            b.data_words(&[1, 2, 3, 4]);
            b.li(R1, 0);
            for _ in 0..20 {
                b.ld(R2, R1, 0);
                b.addi(R4, R1, 1);
                b.addi(R3, R2, 1);
            }
        });
        let m = machine(1);
        let ru = PipelineSim::new(&m).simulate(&with_use).unwrap();
        let rs = PipelineSim::new(&m).simulate(&separated).unwrap();
        // Each load-use pair costs 3 cycles (1 bubble); inserting an
        // independent instruction into the pair hides the bubble, so both
        // versions take the same time even though `separated` executes 20
        // more instructions per iteration.
        assert!(rs.instructions > ru.instructions);
        let rel = (rs.cycles as f64 - ru.cycles as f64).abs() / (ru.cycles as f64);
        assert!(
            rel < 0.04,
            "bubble not hidden: {} vs {} cycles",
            ru.cycles,
            rs.cycles
        );
        // And the pair version pays ~1.5 cycles/instruction (3 per pair).
        let per_pair_u = ru.cycles as f64 / (200.0 * 20.0);
        assert!(
            (per_pair_u - 3.0).abs() < 0.4,
            "load-use pair: {per_pair_u}"
        );
    }

    #[test]
    fn taken_branches_cost_one_bubble() {
        let mut b = ProgramBuilder::named("jumps");
        let mut labels = Vec::new();
        for _ in 0..500 {
            labels.push(b.label());
        }
        for &label in &labels {
            b.jmp(label);
            b.bind(label);
        }
        b.halt();
        let p = b.build();
        let m = machine(1);
        let r = PipelineSim::new(&m).simulate(&p).unwrap();
        let per_jump = (adjusted_cycles(&r, &m) - 5.0) / 500.0;
        assert!(
            (per_jump - 2.0).abs() < 0.1,
            "taken jump should cost 2 cycles at W=1, got {per_jump}"
        );
    }

    #[test]
    fn misprediction_costs_frontend_depth() {
        // Data-dependent branch on genuinely unpredictable data (SplitMix64
        // hash bits). Compare two machines differing only in front-end
        // depth: extra cost per mispredict ≈ depth difference.
        fn splitmix(seed: u64) -> u64 {
            let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
        let mut b = ProgramBuilder::named("bmiss");
        let data: Vec<i64> = (0..4096u64).map(|i| (splitmix(i) & 1) as i64).collect();
        let arr = b.data_words(&data);
        b.li(R1, 0);
        b.li(R2, 4096);
        let top = b.here();
        b.slli(R3, R1, 3);
        b.addi(R3, R3, arr as i64);
        b.ld(R4, R3, 0);
        let skip = b.label();
        b.beq(R4, R0, skip);
        b.addi(R5, R5, 1);
        b.bind(skip);
        b.addi(R1, R1, 1);
        b.blt(R1, R2, top);
        b.halt();
        let p = b.build();

        let mut shallow = machine(4);
        shallow.frontend_depth = 2;
        let mut deep = machine(4);
        deep.frontend_depth = 6;
        let rs = PipelineSim::new(&shallow).simulate(&p).unwrap();
        let rd = PipelineSim::new(&deep).simulate(&p).unwrap();
        assert_eq!(rs.mispredicts, rd.mispredicts);
        assert!(
            rs.mispredicts > 1000,
            "need plentiful mispredicts: {}",
            rs.mispredicts
        );
        let delta = (rd.cycles - rs.cycles) as f64 / rs.mispredicts as f64;
        assert!(
            (delta - 4.0).abs() < 0.8,
            "per-mispredict depth delta: {delta} (expected ~4)"
        );
    }

    #[test]
    fn l2_misses_cost_memory_latency() {
        let p = mim_workloads::spec::mcf_like().program(mim_workloads::WorkloadSize::Tiny);
        let m = machine(4);
        let r = PipelineSim::new(&m).simulate(&p).unwrap();
        assert!(
            r.cpi() > 10.0,
            "pointer chase should be memory bound, CPI = {}",
            r.cpi()
        );
    }

    #[test]
    fn sim_and_profiler_agree_on_event_counts() {
        use mim_profile::Profiler;
        let m = machine(4);
        for w in [
            mim_workloads::mibench::sha(),
            mim_workloads::mibench::dijkstra(),
            mim_workloads::mibench::tiffdither(),
        ] {
            let p = w.program(mim_workloads::WorkloadSize::Tiny);
            let sim = PipelineSim::new(&m).simulate(&p).unwrap();
            let prof = Profiler::new(&m).profile(&p).unwrap();
            assert_eq!(sim.instructions, prof.num_insts, "{}", w.name());
            assert_eq!(sim.misses, prof.misses, "{}", w.name());
            assert_eq!(sim.mispredicts, prof.branch.mispredicts, "{}", w.name());
            assert_eq!(sim.taken_correct, prof.branch.taken_correct, "{}", w.name());
        }
    }

    #[test]
    fn idealization_knobs_remove_their_own_penalty_only() {
        // Each knob must make the run no slower, and the targeted knob
        // must remove (nearly) all of its mechanism's cycles.
        let m = machine(4);
        let p = mim_workloads::mibench::qsort().program(mim_workloads::WorkloadSize::Tiny);
        let full = PipelineSim::new(&m).simulate(&p).unwrap();
        let run = |ideal: SimIdealization| {
            PipelineSim::new(&m)
                .with_idealization(ideal)
                .simulate(&p)
                .unwrap()
        };
        for ideal in [
            SimIdealization {
                perfect_icache: true,
                ..SimIdealization::none()
            },
            SimIdealization {
                perfect_dcache: true,
                ..SimIdealization::none()
            },
            SimIdealization {
                oracle_branches: true,
                ..SimIdealization::none()
            },
            SimIdealization {
                unit_latencies: true,
                ..SimIdealization::none()
            },
            SimIdealization {
                no_dependencies: true,
                ..SimIdealization::none()
            },
            SimIdealization {
                free_taken_bubbles: true,
                ..SimIdealization::none()
            },
        ] {
            let r = run(ideal);
            assert!(
                r.cycles <= full.cycles,
                "{ideal:?} slower: {} > {}",
                r.cycles,
                full.cycles
            );
            // The retired stream and cache/predictor state evolution are
            // untouched by idealization.
            assert_eq!(r.instructions, full.instructions, "{ideal:?}");
            assert_eq!(r.misses, full.misses, "{ideal:?}");
            assert_eq!(r.branches, full.branches, "{ideal:?}");
        }
        // Oracle prediction eliminates mispredicts entirely.
        let oracle = run(SimIdealization {
            oracle_branches: true,
            ..SimIdealization::none()
        });
        assert_eq!(oracle.mispredicts, 0);
        assert!(full.mispredicts > 0);
        // A memory-bound kernel loses most of its cycles to the D-cache
        // knob.
        let mcf = mim_workloads::spec::mcf_like().program(mim_workloads::WorkloadSize::Tiny);
        let mcf_full = PipelineSim::new(&m).simulate(&mcf).unwrap();
        let mcf_ideal = PipelineSim::new(&m)
            .with_idealization(SimIdealization {
                perfect_dcache: true,
                ..SimIdealization::none()
            })
            .simulate(&mcf)
            .unwrap();
        assert!(
            (mcf_ideal.cycles as f64) < 0.3 * mcf_full.cycles as f64,
            "perfect D-cache should collapse a pointer chase: {} vs {}",
            mcf_ideal.cycles,
            mcf_full.cycles
        );
    }

    #[test]
    fn sampled_without_a_plan_degenerates_to_full_simulation() {
        // With no sampling plan every event is measured as one unit: the
        // point estimate is the full cycle count (minus the pipeline-drain
        // constant, which cancels in watermark deltas) and the interval is
        // degenerate.
        let p = mim_workloads::mibench::sha().program(mim_workloads::WorkloadSize::Tiny);
        let m = machine(4);
        let trace = mim_trace::Trace::record(&p, None).unwrap();
        let full = PipelineSim::new(&m).simulate(&p).unwrap();
        let mut replay = trace.replay(&p).unwrap();
        let sampled = PipelineSim::new(&m).simulate_sampled(&mut replay).unwrap();
        let stats = sampled.sampling.as_ref().unwrap();
        assert_eq!(stats.units, 1);
        assert_eq!(stats.measured_instructions, full.instructions);
        assert!((stats.fraction - 1.0).abs() < 1e-12);
        assert_eq!(stats.ci_half_width, 0.0);
        assert_eq!(sampled.instructions, full.instructions);
        assert_eq!(sampled.misses, full.misses);
        assert_eq!(sampled.mispredicts, full.mispredicts);
        // Full reporting adds the +2 drain that the watermark delta omits.
        assert_eq!(sampled.cycles + 2, full.cycles);
    }

    #[test]
    fn sampled_cpi_tracks_full_cpi_with_warming() {
        use mim_trace::Sampling;
        let m = machine(4);
        for w in [
            mim_workloads::mibench::sha(),
            mim_workloads::mibench::qsort(),
        ] {
            let p = w.program(mim_workloads::WorkloadSize::Tiny);
            let full = PipelineSim::new(&m).simulate(&p).unwrap();
            let trace = mim_trace::Trace::record(&p, None).unwrap();
            let mut replay = trace
                .replay(&p)
                .unwrap()
                .with_sampling(Sampling::default_plan());
            let sampled = PipelineSim::new(&m).simulate_sampled(&mut replay).unwrap();
            let stats = sampled.sampling.as_ref().unwrap();
            assert!(stats.units > 5, "{}: only {} units", w.name(), stats.units);
            assert!(
                stats.fraction < 0.15,
                "{}: measured fraction {}",
                w.name(),
                stats.fraction
            );
            // The point estimate must land within the reported interval
            // plus a small systematic allowance for window seams and
            // residual cold state after warm-up.
            let err = (sampled.cpi() - full.cpi()).abs();
            let tol = stats.ci_half_width + 0.02 * full.cpi();
            assert!(
                err <= tol,
                "{}: sampled CPI {} vs full {} (±{})",
                w.name(),
                sampled.cpi(),
                full.cpi(),
                stats.ci_half_width
            );
        }
    }

    #[test]
    fn warming_tightens_sampled_error() {
        // The same sampling geometry with warm-up disabled must not beat
        // the warmed run: cold cache/predictor state at each window start
        // biases per-unit CPI upward.
        use mim_trace::Sampling;
        let m = machine(4);
        let p = mim_workloads::mibench::qsort().program(mim_workloads::WorkloadSize::Tiny);
        let full = PipelineSim::new(&m).simulate(&p).unwrap();
        let trace = mim_trace::Trace::record(&p, None).unwrap();
        let run = |plan: Sampling| {
            let mut replay = trace.replay(&p).unwrap().with_sampling(plan);
            PipelineSim::new(&m).simulate_sampled(&mut replay).unwrap()
        };
        let warmed = run(Sampling::default_plan());
        let cold = run(Sampling::new(1000, 100).with_offset(100));
        let err_warm = (warmed.cpi() - full.cpi()).abs();
        let err_cold = (cold.cpi() - full.cpi()).abs();
        assert!(
            err_warm <= err_cold + 1e-9,
            "warming should not hurt: warm {err_warm} vs cold {err_cold}"
        );
    }

    #[test]
    fn timeline_is_off_by_default_and_strictly_out_of_band() {
        let p = mim_workloads::mibench::sha().program(mim_workloads::WorkloadSize::Tiny);
        let m = machine(4);
        let plain = PipelineSim::new(&m).simulate(&p).unwrap();
        assert!(plain.timeline.is_none());
        let timed = PipelineSim::new(&m)
            .with_timeline(5000)
            .simulate(&p)
            .unwrap();
        let tl = timed.timeline.as_ref().expect("timeline requested");
        // Out-of-band: every other field is untouched.
        assert_eq!(timed.cycles, plain.cycles);
        assert_eq!(timed.instructions, plain.instructions);
        assert_eq!(timed.misses, plain.misses);
        assert_eq!(timed.mispredicts, plain.mispredicts);
        // The timeline accounts for every instruction, and with the +2
        // pipeline-drain constant, every cycle.
        assert_eq!(tl.interval(), 5000);
        assert_eq!(tl.num_insts(), timed.instructions);
        assert_eq!(tl.total_cycles() + 2, timed.cycles);
        // Full-run intervals are full-width except possibly the last.
        for i in 0..tl.len() - 1 {
            assert_eq!(tl.insts_of(i), 5000, "interval {i}");
        }
        // Deterministic across runs (integer cycles end to end, so equal
        // values serialize to equal bytes).
        let again = PipelineSim::new(&m)
            .with_timeline(5000)
            .simulate(&p)
            .unwrap();
        assert_eq!(tl, again.timeline.as_ref().unwrap());
    }

    #[test]
    fn sampled_timeline_aligns_interval_for_interval_with_full() {
        use mim_trace::Sampling;
        let p = mim_workloads::mibench::qsort().program(mim_workloads::WorkloadSize::Tiny);
        let m = machine(4);
        let full = PipelineSim::new(&m)
            .with_timeline(2000)
            .simulate(&p)
            .unwrap();
        let ftl = full.timeline.as_ref().unwrap();
        let trace = mim_trace::Trace::record(&p, None).unwrap();

        // Without a plan the sampled path walks the identical stream and
        // must produce the identical timeline.
        let mut replay = trace.replay(&p).unwrap();
        let degen = PipelineSim::new(&m)
            .with_timeline(2000)
            .simulate_sampled(&mut replay)
            .unwrap();
        assert_eq!(degen.timeline.as_ref().unwrap(), ftl);

        // With a plan, interval boundaries are positions in the *walked*
        // stream, so the sampled timeline has the same shape as the full
        // one and each interval's cycles cover exactly the measured
        // instructions inside it.
        let mut replay = trace
            .replay(&p)
            .unwrap()
            .with_sampling(Sampling::default_plan());
        let sampled = PipelineSim::new(&m)
            .with_timeline(2000)
            .simulate_sampled(&mut replay)
            .unwrap();
        let stl = sampled.timeline.as_ref().unwrap();
        let stats = sampled.sampling.as_ref().unwrap();
        assert_eq!(stl.len(), ftl.len(), "interval counts align");
        assert_eq!(stl.num_insts(), stats.measured_instructions);
        assert_eq!(stl.total_cycles(), stats.measured_cycles);
        for i in 0..stl.len() {
            assert!(
                stl.insts_of(i) <= ftl.insts_of(i),
                "interval {i}: sampled measures a subset"
            );
        }
        // The per-phase view localizes error: on covered intervals the
        // sampled CPI tracks the full CPI to first order.
        let covered: Vec<usize> = (0..stl.len()).filter(|&i| stl.insts_of(i) >= 200).collect();
        assert!(!covered.is_empty(), "plan must cover some intervals");
        let mean_err = covered
            .iter()
            .map(|&i| (stl.cpi_of_interval(i) - ftl.cpi_of_interval(i)).abs())
            .sum::<f64>()
            / covered.len() as f64;
        assert!(
            mean_err <= 0.5 * full.cpi(),
            "per-phase error {mean_err} vs full CPI {}",
            full.cpi()
        );
    }

    #[test]
    fn wider_machines_are_never_slower() {
        for w in [
            mim_workloads::mibench::sha(),
            mim_workloads::mibench::qsort(),
        ] {
            let p = w.program(mim_workloads::WorkloadSize::Tiny);
            let mut prev = u64::MAX;
            for width in 1..=4 {
                let r = PipelineSim::new(&machine(width)).simulate(&p).unwrap();
                assert!(
                    r.cycles <= prev,
                    "{}: width {width} slower ({} > {prev})",
                    w.name(),
                    r.cycles
                );
                prev = r.cycles;
            }
        }
    }
}
