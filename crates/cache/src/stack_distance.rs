//! Mattson LRU stack-distance profiling.
//!
//! A single pass over an access stream yields the reuse (stack) distance of
//! every access; from the resulting histogram the miss count of a
//! fully-associative LRU cache of *any* capacity follows directly
//! (Mattson et al., 1970 — reference \[22\] of the paper). This is the
//! classical "single-pass cache simulation for a range of cache sizes" the
//! paper's profiler relies on (§2.1).

use std::collections::HashMap;

/// Fenwick (binary indexed) tree over live-block timestamps.
#[derive(Debug, Clone)]
struct Fenwick {
    tree: Vec<u32>,
}

impl Fenwick {
    fn new(n: usize) -> Fenwick {
        Fenwick {
            tree: vec![0; n + 1],
        }
    }

    fn len(&self) -> usize {
        self.tree.len() - 1
    }

    /// Adds `delta` at position `i` (0-based).
    fn add(&mut self, i: usize, delta: i32) {
        let mut i = i + 1;
        while i < self.tree.len() {
            self.tree[i] = (self.tree[i] as i64 + i64::from(delta)) as u32;
            i += i & i.wrapping_neg();
        }
    }

    /// Sum of positions `0..=i`.
    fn prefix(&self, i: usize) -> u64 {
        let mut i = i + 1;
        let mut s = 0u64;
        while i > 0 {
            s += u64::from(self.tree[i]);
            i -= i & i.wrapping_neg();
        }
        s
    }
}

/// Single-pass LRU stack-distance profiler.
///
/// Feed it a block-granular address stream with
/// [`access`](StackDistance::access); afterwards,
/// [`misses_for_capacity`](StackDistance::misses_for_capacity) returns the
/// exact miss count a fully-associative LRU cache of the given capacity
/// would have incurred on that stream — for every capacity, from one pass.
///
/// The implementation uses a Fenwick tree over last-access timestamps with
/// periodic renumbering, giving `O(log n)` per access and memory bounded by
/// the footprint (distinct blocks), not the trace length.
///
/// # Example
///
/// ```
/// use mim_cache::StackDistance;
///
/// let mut sd = StackDistance::new(64);
/// // Cyclic sweep over 4 blocks, twice.
/// for _ in 0..2 {
///     for b in 0..4u64 {
///         sd.access(b * 64);
///     }
/// }
/// // A 4-block cache holds the whole loop: only 4 cold misses.
/// assert_eq!(sd.misses_for_capacity(4), 4);
/// // A 3-block LRU cache thrashes: every access misses.
/// assert_eq!(sd.misses_for_capacity(3), 8);
/// ```
#[derive(Debug, Clone)]
pub struct StackDistance {
    block_bytes: u64,
    /// block number -> timestamp of its most recent access
    last: HashMap<u64, usize>,
    fenwick: Fenwick,
    time: usize,
    cold_misses: u64,
    accesses: u64,
    /// histogram\[d\] = number of accesses with stack distance exactly `d`
    histogram: Vec<u64>,
}

impl StackDistance {
    /// Creates a profiler for the given block (line) size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_bytes` is zero.
    pub fn new(block_bytes: u64) -> StackDistance {
        assert!(block_bytes > 0, "block size must be nonzero");
        StackDistance {
            block_bytes,
            last: HashMap::new(),
            fenwick: Fenwick::new(1024),
            time: 0,
            cold_misses: 0,
            accesses: 0,
            histogram: Vec::new(),
        }
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Accesses that touched a never-before-seen block.
    pub fn cold_misses(&self) -> u64 {
        self.cold_misses
    }

    /// Number of distinct blocks touched (the footprint).
    pub fn footprint_blocks(&self) -> usize {
        self.last.len()
    }

    /// The stack-distance histogram: `histogram()[d]` counts accesses whose
    /// reuse distance was exactly `d` distinct blocks.
    pub fn histogram(&self) -> &[u64] {
        &self.histogram
    }

    /// Records one access to the byte address `addr`.
    pub fn access(&mut self, addr: u64) {
        let block = addr / self.block_bytes;
        self.accesses += 1;

        if self.time == self.fenwick.len() {
            self.compact();
        }

        let t = self.time;
        match self.last.get_mut(&block) {
            Some(prev_slot) => {
                let prev = *prev_slot;
                // Count live blocks with a timestamp strictly after `prev`:
                // those are the distinct blocks touched since.
                let live_total = self.fenwick.prefix(self.fenwick.len() - 1);
                let live_upto_prev = self.fenwick.prefix(prev);
                let distance = (live_total - live_upto_prev) as usize;
                if distance >= self.histogram.len() {
                    self.histogram.resize(distance + 1, 0);
                }
                self.histogram[distance] += 1;
                self.fenwick.add(prev, -1);
                *prev_slot = t;
            }
            None => {
                self.cold_misses += 1;
                self.last.insert(block, t);
            }
        }
        self.fenwick.add(t, 1);
        self.time += 1;
    }

    /// Renumbers live timestamps to keep the Fenwick tree compact.
    fn compact(&mut self) {
        let mut live: Vec<(u64, usize)> = self.last.iter().map(|(&b, &t)| (b, t)).collect();
        live.sort_unstable_by_key(|&(_, t)| t);
        let n = live.len();
        let cap = (2 * n).max(1024);
        let mut fenwick = Fenwick::new(cap);
        for (new_t, (block, _)) in live.iter().enumerate() {
            self.last.insert(*block, new_t);
            fenwick.add(new_t, 1);
        }
        self.fenwick = fenwick;
        self.time = n;
    }

    /// Exact miss count of a fully-associative LRU cache with
    /// `capacity_blocks` blocks on the observed stream.
    ///
    /// An access with stack distance `d` hits iff `d < capacity_blocks`;
    /// cold accesses always miss.
    pub fn misses_for_capacity(&self, capacity_blocks: usize) -> u64 {
        let far: u64 = self.histogram.iter().skip(capacity_blocks).sum();
        self.cold_misses + far
    }

    /// Miss counts for a list of capacities (convenience for sweeps).
    pub fn miss_curve(&self, capacities: &[usize]) -> Vec<u64> {
        capacities
            .iter()
            .map(|&c| self.misses_for_capacity(c))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::SetAssocCache;
    use crate::config::CacheConfig;

    /// Brute-force reference: explicit LRU stack with linear search.
    struct NaiveLru {
        stack: Vec<u64>,
        misses: u64,
        capacity: usize,
    }

    impl NaiveLru {
        fn new(capacity: usize) -> NaiveLru {
            NaiveLru {
                stack: Vec::new(),
                misses: 0,
                capacity,
            }
        }
        fn access(&mut self, block: u64) {
            if let Some(pos) = self.stack.iter().position(|&b| b == block) {
                self.stack.remove(pos);
            } else {
                self.misses += 1;
                if self.stack.len() == self.capacity {
                    self.stack.pop();
                }
            }
            self.stack.insert(0, block);
        }
    }

    fn lcg_stream(n: usize, modulus: u64, seed: u64) -> Vec<u64> {
        let mut x = seed;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                (x >> 24) % modulus
            })
            .collect()
    }

    #[test]
    fn matches_naive_lru_for_all_capacities() {
        let stream = lcg_stream(5_000, 300, 7);
        let mut sd = StackDistance::new(1);
        for &b in &stream {
            sd.access(b);
        }
        for capacity in [1usize, 2, 3, 7, 16, 50, 100, 299, 300, 400] {
            let mut naive = NaiveLru::new(capacity);
            for &b in &stream {
                naive.access(b);
            }
            assert_eq!(
                sd.misses_for_capacity(capacity),
                naive.misses,
                "capacity {capacity}"
            );
        }
    }

    #[test]
    fn matches_fully_associative_set_assoc_cache() {
        // A SetAssocCache with one set and N ways is a fully-assoc LRU cache.
        let stream = lcg_stream(3_000, 100, 99);
        let mut sd = StackDistance::new(64);
        let ways = 16u32;
        let mut cache =
            SetAssocCache::new(CacheConfig::new("fa", 64 * u64::from(ways), ways, 64).unwrap());
        for &b in &stream {
            sd.access(b * 64);
            cache.access(b * 64);
        }
        assert_eq!(sd.misses_for_capacity(ways as usize), cache.misses());
    }

    #[test]
    fn compaction_preserves_results() {
        // Long stream over a small footprint forces many compactions
        // (initial Fenwick capacity is 1024).
        let stream = lcg_stream(50_000, 40, 3);
        let mut sd = StackDistance::new(1);
        for &b in &stream {
            sd.access(b);
        }
        let mut naive = NaiveLru::new(10);
        for &b in &stream {
            naive.access(b);
        }
        assert_eq!(sd.misses_for_capacity(10), naive.misses);
        assert_eq!(sd.cold_misses(), 40);
        assert_eq!(sd.footprint_blocks(), 40);
    }

    #[test]
    fn miss_curve_is_monotone_nonincreasing() {
        let stream = lcg_stream(10_000, 500, 1234);
        let mut sd = StackDistance::new(1);
        for &b in &stream {
            sd.access(b);
        }
        let caps: Vec<usize> = (1..60).map(|i| i * 10).collect();
        let curve = sd.miss_curve(&caps);
        for w in curve.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // At footprint capacity only cold misses remain.
        assert_eq!(sd.misses_for_capacity(500), sd.cold_misses());
    }

    #[test]
    fn histogram_mass_accounts_every_access() {
        let stream = lcg_stream(2_000, 64, 5);
        let mut sd = StackDistance::new(1);
        for &b in &stream {
            sd.access(b);
        }
        let reuse: u64 = sd.histogram().iter().sum();
        assert_eq!(reuse + sd.cold_misses(), sd.accesses());
    }

    #[test]
    fn sequential_stream_all_cold() {
        let mut sd = StackDistance::new(64);
        for i in 0..100u64 {
            sd.access(i * 64);
        }
        assert_eq!(sd.cold_misses(), 100);
        assert_eq!(sd.misses_for_capacity(1), 100);
    }
}
