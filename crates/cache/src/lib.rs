//! # mim-cache — cache and TLB simulation
//!
//! Memory-hierarchy substrate for the MIM toolkit:
//!
//! * [`CacheConfig`] / [`SetAssocCache`] — set-associative LRU caches,
//! * [`Tlb`] — fully-associative LRU translation lookaside buffers,
//! * [`Hierarchy`] — a two-level hierarchy (split L1s + unified L2 + TLBs)
//!   matching the machine in the ISPASS 2012 paper (Table 2),
//! * [`MultiConfig`] — single-pass simulation of many L2 configurations at
//!   once, the technique the paper's profiler uses (§2.1) so one profiling
//!   run covers the whole design space,
//! * [`StackDistance`] — Mattson LRU stack-distance histograms, computing
//!   miss counts for *every* fully-associative capacity in one pass.
//!
//! ## Example
//!
//! ```
//! use mim_cache::{CacheConfig, SetAssocCache};
//!
//! let config = CacheConfig::new("L1D", 32 * 1024, 4, 64).unwrap();
//! let mut cache = SetAssocCache::new(config);
//! assert!(!cache.access(0x1000).hit); // cold miss
//! assert!(cache.access(0x1008).hit);  // same 64-byte block
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod config;
mod hierarchy;
mod multi;
mod stack_distance;
mod tlb;

pub use cache::{AccessResult, SetAssocCache};
pub use config::{CacheConfig, CacheConfigError, TlbConfig};
pub use hierarchy::{Hierarchy, HierarchyConfig, MemAccessKind, MemLevel, MissCounts};
pub use multi::MultiConfig;
pub use stack_distance::StackDistance;
pub use tlb::Tlb;
