//! Two-level cache hierarchy with TLBs, as used by the paper's machine.

use serde::{Deserialize, Serialize};

use crate::cache::SetAssocCache;
use crate::config::{CacheConfig, TlbConfig};
use crate::tlb::Tlb;

/// Which kind of memory reference is being performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemAccessKind {
    /// Instruction fetch.
    Fetch,
    /// Data load.
    Load,
    /// Data store.
    Store,
}

/// The level of the memory hierarchy that serviced an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MemLevel {
    /// Hit in the first-level cache.
    L1,
    /// Missed L1, hit the unified L2.
    L2,
    /// Missed both caches; serviced by main memory.
    Memory,
}

/// Geometry of the full hierarchy (split L1 caches, unified L2, split TLBs).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Instruction L1 cache.
    pub l1i: CacheConfig,
    /// Data L1 cache.
    pub l1d: CacheConfig,
    /// Unified second-level cache.
    pub l2: CacheConfig,
    /// Instruction TLB.
    pub itlb: TlbConfig,
    /// Data TLB.
    pub dtlb: TlbConfig,
}

impl HierarchyConfig {
    /// The paper's default hierarchy (Table 2): 32 KB 4-way split L1s with
    /// 64-byte blocks, 512 KB 8-way unified L2, 32-entry TLBs.
    pub fn default_hierarchy() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new("L1I", 32 * 1024, 4, 64).expect("valid L1I"),
            l1d: CacheConfig::new("L1D", 32 * 1024, 4, 64).expect("valid L1D"),
            l2: CacheConfig::new("L2", 512 * 1024, 8, 64).expect("valid L2"),
            itlb: TlbConfig::default_tlb(),
            dtlb: TlbConfig::default_tlb(),
        }
    }

    /// Same hierarchy with a different L2 geometry (used by the Table 2
    /// design-space sweep).
    pub fn with_l2(mut self, l2: CacheConfig) -> HierarchyConfig {
        self.l2 = l2;
        self
    }
}

/// Per-event miss counters accumulated by a [`Hierarchy`].
///
/// These are exactly the `misses_i` inputs of the mechanistic model
/// (paper Table 1).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MissCounts {
    /// Instruction fetch accesses (one per executed instruction).
    pub inst_accesses: u64,
    /// Data accesses (loads + stores).
    pub data_accesses: u64,
    /// L1 instruction-cache misses.
    pub l1i_misses: u64,
    /// L2 misses on the instruction path.
    pub l2i_misses: u64,
    /// L1 data-cache misses (loads + stores).
    pub l1d_misses: u64,
    /// L2 misses on the data path.
    pub l2d_misses: u64,
    /// L1 data-cache misses due to loads only.
    pub l1d_load_misses: u64,
    /// L2 misses due to loads only.
    pub l2d_load_misses: u64,
    /// Instruction-TLB misses.
    pub itlb_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
}

impl MissCounts {
    /// L1I misses that hit in L2.
    pub fn l1i_l2_hits(&self) -> u64 {
        self.l1i_misses - self.l2i_misses
    }

    /// L1D misses that hit in L2.
    pub fn l1d_l2_hits(&self) -> u64 {
        self.l1d_misses - self.l2d_misses
    }
}

/// A stateful two-level hierarchy: split L1I/L1D, unified L2, split TLBs.
///
/// One instance models one design point. The profiler and the pipeline
/// simulator both drive this type so that model and detailed simulation see
/// identical miss behaviour.
///
/// # Example
///
/// ```
/// use mim_cache::{Hierarchy, HierarchyConfig, MemAccessKind, MemLevel};
///
/// let mut h = Hierarchy::new(HierarchyConfig::default_hierarchy());
/// let (level, tlb_miss) = h.access(MemAccessKind::Load, 0x4000);
/// assert_eq!(level, MemLevel::Memory); // cold
/// assert!(tlb_miss);
/// let (level, tlb_miss) = h.access(MemAccessKind::Load, 0x4008);
/// assert_eq!(level, MemLevel::L1);
/// assert!(!tlb_miss);
/// ```
#[derive(Debug, Clone)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    l2: SetAssocCache,
    itlb: Tlb,
    dtlb: Tlb,
    counts: MissCounts,
}

impl Hierarchy {
    /// Creates an empty hierarchy.
    pub fn new(config: HierarchyConfig) -> Hierarchy {
        Hierarchy {
            l1i: SetAssocCache::new(config.l1i.clone()),
            l1d: SetAssocCache::new(config.l1d.clone()),
            l2: SetAssocCache::new(config.l2.clone()),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            config,
            counts: MissCounts::default(),
        }
    }

    /// The hierarchy's geometry.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Accumulated miss counters.
    pub fn counts(&self) -> MissCounts {
        self.counts
    }

    /// Performs one access; returns the servicing level and whether the
    /// corresponding TLB missed.
    pub fn access(&mut self, kind: MemAccessKind, addr: u64) -> (MemLevel, bool) {
        match kind {
            MemAccessKind::Fetch => {
                self.counts.inst_accesses += 1;
                let tlb_miss = !self.itlb.access(addr).hit;
                if tlb_miss {
                    self.counts.itlb_misses += 1;
                }
                if self.l1i.access(addr).hit {
                    (MemLevel::L1, tlb_miss)
                } else {
                    self.counts.l1i_misses += 1;
                    if self.l2.access(addr).hit {
                        (MemLevel::L2, tlb_miss)
                    } else {
                        self.counts.l2i_misses += 1;
                        (MemLevel::Memory, tlb_miss)
                    }
                }
            }
            MemAccessKind::Load | MemAccessKind::Store => {
                self.counts.data_accesses += 1;
                let is_load = kind == MemAccessKind::Load;
                let tlb_miss = !self.dtlb.access(addr).hit;
                if tlb_miss {
                    self.counts.dtlb_misses += 1;
                }
                if self.l1d.access(addr).hit {
                    (MemLevel::L1, tlb_miss)
                } else {
                    self.counts.l1d_misses += 1;
                    if is_load {
                        self.counts.l1d_load_misses += 1;
                    }
                    if self.l2.access(addr).hit {
                        (MemLevel::L2, tlb_miss)
                    } else {
                        self.counts.l2d_misses += 1;
                        if is_load {
                            self.counts.l2d_load_misses += 1;
                        }
                        (MemLevel::Memory, tlb_miss)
                    }
                }
            }
        }
    }

    /// Functional warming: performs the access's *state* updates (cache
    /// fills, LRU recency, TLB refills) without touching the miss
    /// counters.
    ///
    /// This is the cheap update path sampled simulation drives between
    /// detailed sample units, so the hierarchy enters each unit with the
    /// state a full run would have while [`counts`](Hierarchy::counts)
    /// reflects measured events only. The fill and replacement decisions
    /// are identical to [`access`](Hierarchy::access): interleaving warm
    /// and counted accesses evolves the same state as counting them all.
    pub fn warm(&mut self, kind: MemAccessKind, addr: u64) {
        match kind {
            MemAccessKind::Fetch => {
                self.itlb.access(addr);
                if !self.l1i.access(addr).hit {
                    self.l2.access(addr);
                }
            }
            MemAccessKind::Load | MemAccessKind::Store => {
                self.dtlb.access(addr);
                if !self.l1d.access(addr).hit {
                    self.l2.access(addr);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_hierarchy() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            l1i: CacheConfig::new("L1I", 1024, 2, 64).unwrap(),
            l1d: CacheConfig::new("L1D", 1024, 2, 64).unwrap(),
            l2: CacheConfig::new("L2", 8192, 4, 64).unwrap(),
            itlb: TlbConfig {
                entries: 2,
                page_bytes: 4096,
            },
            dtlb: TlbConfig {
                entries: 2,
                page_bytes: 4096,
            },
        })
    }

    #[test]
    fn cold_access_goes_to_memory_then_warms() {
        let mut h = small_hierarchy();
        assert_eq!(h.access(MemAccessKind::Load, 0).0, MemLevel::Memory);
        assert_eq!(h.access(MemAccessKind::Load, 0).0, MemLevel::L1);
        let c = h.counts();
        assert_eq!(c.l1d_misses, 1);
        assert_eq!(c.l2d_misses, 1);
        assert_eq!(c.data_accesses, 2);
    }

    #[test]
    fn l2_captures_l1_victims() {
        let mut h = small_hierarchy();
        // L1D: 1024B/2way/64B = 8 sets. Blocks 0, 8, 16 map to set 0.
        h.access(MemAccessKind::Load, 0);
        h.access(MemAccessKind::Load, 8 * 64);
        h.access(MemAccessKind::Load, 16 * 64); // evicts block 0 from L1
        let (level, _) = h.access(MemAccessKind::Load, 0); // still in L2
        assert_eq!(level, MemLevel::L2);
    }

    #[test]
    fn instruction_and_data_paths_are_split() {
        let mut h = small_hierarchy();
        h.access(MemAccessKind::Fetch, 0);
        let c = h.counts();
        assert_eq!(c.l1i_misses, 1);
        assert_eq!(c.l1d_misses, 0);
        // data access at same address misses L1D but hits unified L2
        let (level, _) = h.access(MemAccessKind::Load, 0);
        assert_eq!(level, MemLevel::L2);
    }

    #[test]
    fn load_only_counters_exclude_stores() {
        let mut h = small_hierarchy();
        h.access(MemAccessKind::Store, 0); // cold store miss
        h.access(MemAccessKind::Load, 4096 * 8); // cold load miss, far page
        let c = h.counts();
        assert_eq!(c.l1d_misses, 2);
        assert_eq!(c.l1d_load_misses, 1);
        assert_eq!(c.l2d_load_misses, 1);
    }

    #[test]
    fn tlb_misses_counted_per_side() {
        let mut h = small_hierarchy();
        h.access(MemAccessKind::Fetch, 0);
        h.access(MemAccessKind::Load, 0);
        h.access(MemAccessKind::Load, 4096);
        h.access(MemAccessKind::Load, 2 * 4096); // evicts page 0 from 2-entry DTLB
        h.access(MemAccessKind::Load, 0);
        let c = h.counts();
        assert_eq!(c.itlb_misses, 1);
        assert_eq!(c.dtlb_misses, 4);
    }

    #[test]
    fn warming_updates_state_but_not_counters() {
        let mut warmed = small_hierarchy();
        warmed.warm(MemAccessKind::Load, 0);
        warmed.warm(MemAccessKind::Fetch, 4096);
        assert_eq!(warmed.counts(), MissCounts::default());
        // The warmed lines/pages now hit, exactly as if `access` had
        // brought them in.
        let (level, tlb_miss) = warmed.access(MemAccessKind::Load, 0);
        assert_eq!(level, MemLevel::L1);
        assert!(!tlb_miss);
        let (level, tlb_miss) = warmed.access(MemAccessKind::Fetch, 4096);
        assert_eq!(level, MemLevel::L1);
        assert!(!tlb_miss);

        // Warm and counted accesses evolve identical cache state: a
        // warm-then-access sequence leaves the same hit/miss future as
        // access-then-access, differing only in what was counted.
        let mut via_warm = small_hierarchy();
        let mut via_access = small_hierarchy();
        let addrs = [0u64, 8 * 64, 16 * 64, 0, 4096, 2 * 4096, 64];
        for (i, &addr) in addrs.iter().enumerate() {
            if i % 2 == 0 {
                via_warm.warm(MemAccessKind::Load, addr);
            } else {
                via_warm.access(MemAccessKind::Load, addr);
            }
            via_access.access(MemAccessKind::Load, addr);
        }
        for &addr in &addrs {
            assert_eq!(
                via_warm.access(MemAccessKind::Load, addr).0,
                via_access.access(MemAccessKind::Load, addr).0,
                "state diverged at {addr:#x}"
            );
        }
    }

    #[test]
    fn l2_hit_helpers() {
        let c = MissCounts {
            l1i_misses: 10,
            l2i_misses: 3,
            l1d_misses: 20,
            l2d_misses: 5,
            ..MissCounts::default()
        };
        assert_eq!(c.l1i_l2_hits(), 7);
        assert_eq!(c.l1d_l2_hits(), 15);
    }
}
