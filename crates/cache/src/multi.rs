//! Single-pass simulation of many L2 configurations at once.

use crate::cache::SetAssocCache;
use crate::config::CacheConfig;
use crate::hierarchy::{HierarchyConfig, MemAccessKind, MissCounts};
use crate::tlb::Tlb;

/// Simulates one set of L1 caches/TLBs together with *many* candidate L2
/// configurations in a single pass over the access stream.
///
/// This is the paper's single-pass profiling trick (§2.1): because L1
/// geometry is fixed across the design space (Table 2), the L1 filter — and
/// hence the L2 reference stream — is identical for every L2 candidate, so
/// all candidates can be warmed simultaneously. One profiling run then
/// yields the `misses_i` model inputs for every design point.
///
/// # Example
///
/// ```
/// use mim_cache::{CacheConfig, HierarchyConfig, MemAccessKind, MultiConfig};
///
/// let base = HierarchyConfig::default_hierarchy();
/// let l2s = vec![
///     CacheConfig::new("L2-128K", 128 * 1024, 8, 64).unwrap(),
///     CacheConfig::new("L2-1M", 1024 * 1024, 8, 64).unwrap(),
/// ];
/// let mut multi = MultiConfig::new(&base, l2s);
/// for i in 0..1000u64 {
///     multi.access(MemAccessKind::Load, i * 64);
/// }
/// let small = multi.counts(0);
/// let large = multi.counts(1);
/// assert!(large.l2d_misses <= small.l2d_misses);
/// ```
#[derive(Debug, Clone)]
pub struct MultiConfig {
    l1i: SetAssocCache,
    l1d: SetAssocCache,
    itlb: Tlb,
    dtlb: Tlb,
    l2s: Vec<SetAssocCache>,
    /// Shared L1/TLB counters (identical across configs).
    base: MissCounts,
    /// Per-config L2 miss counters.
    l2i_misses: Vec<u64>,
    l2d_misses: Vec<u64>,
    l2d_load_misses: Vec<u64>,
}

impl MultiConfig {
    /// Creates a sweep sharing `base`'s L1/TLB geometry across all `l2s`.
    pub fn new(base: &HierarchyConfig, l2s: Vec<CacheConfig>) -> MultiConfig {
        let n = l2s.len();
        MultiConfig {
            l1i: SetAssocCache::new(base.l1i.clone()),
            l1d: SetAssocCache::new(base.l1d.clone()),
            itlb: Tlb::new(base.itlb),
            dtlb: Tlb::new(base.dtlb),
            l2s: l2s.into_iter().map(SetAssocCache::new).collect(),
            base: MissCounts::default(),
            l2i_misses: vec![0; n],
            l2d_misses: vec![0; n],
            l2d_load_misses: vec![0; n],
        }
    }

    /// Number of L2 configurations being simulated.
    pub fn num_configs(&self) -> usize {
        self.l2s.len()
    }

    /// Performs one access against the shared L1s and every L2 candidate.
    pub fn access(&mut self, kind: MemAccessKind, addr: u64) {
        match kind {
            MemAccessKind::Fetch => {
                self.base.inst_accesses += 1;
                if !self.itlb.access(addr).hit {
                    self.base.itlb_misses += 1;
                }
                if !self.l1i.access(addr).hit {
                    self.base.l1i_misses += 1;
                    for (i, l2) in self.l2s.iter_mut().enumerate() {
                        if !l2.access(addr).hit {
                            self.l2i_misses[i] += 1;
                        }
                    }
                }
            }
            MemAccessKind::Load | MemAccessKind::Store => {
                self.base.data_accesses += 1;
                let is_load = kind == MemAccessKind::Load;
                if !self.dtlb.access(addr).hit {
                    self.base.dtlb_misses += 1;
                }
                if !self.l1d.access(addr).hit {
                    self.base.l1d_misses += 1;
                    if is_load {
                        self.base.l1d_load_misses += 1;
                    }
                    for (i, l2) in self.l2s.iter_mut().enumerate() {
                        if !l2.access(addr).hit {
                            self.l2d_misses[i] += 1;
                            if is_load {
                                self.l2d_load_misses[i] += 1;
                            }
                        }
                    }
                }
            }
        }
    }

    /// Miss counters for the `config_index`-th L2 candidate.
    ///
    /// # Panics
    ///
    /// Panics if `config_index >= self.num_configs()`.
    pub fn counts(&self, config_index: usize) -> MissCounts {
        MissCounts {
            l2i_misses: self.l2i_misses[config_index],
            l2d_misses: self.l2d_misses[config_index],
            l2d_load_misses: self.l2d_load_misses[config_index],
            ..self.base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::Hierarchy;

    fn base() -> HierarchyConfig {
        HierarchyConfig {
            l1i: CacheConfig::new("L1I", 1024, 2, 64).unwrap(),
            l1d: CacheConfig::new("L1D", 1024, 2, 64).unwrap(),
            l2: CacheConfig::new("L2", 8192, 4, 64).unwrap(),
            itlb: crate::config::TlbConfig::default_tlb(),
            dtlb: crate::config::TlbConfig::default_tlb(),
        }
    }

    /// The multi-config sweep must agree exactly with simulating each
    /// hierarchy independently.
    #[test]
    fn matches_independent_hierarchies() {
        let base_cfg = base();
        let l2a = CacheConfig::new("L2a", 4096, 4, 64).unwrap();
        let l2b = CacheConfig::new("L2b", 16384, 8, 64).unwrap();

        let mut multi = MultiConfig::new(&base_cfg, vec![l2a.clone(), l2b.clone()]);
        let mut ha = Hierarchy::new(base_cfg.clone().with_l2(l2a));
        let mut hb = Hierarchy::new(base_cfg.clone().with_l2(l2b));

        let mut x: u64 = 0xdeadbeef;
        for i in 0..20_000u64 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let kind = match x % 3 {
                0 => MemAccessKind::Fetch,
                1 => MemAccessKind::Load,
                _ => MemAccessKind::Store,
            };
            let addr = ((x >> 16) % 262_144) & !7;
            multi.access(kind, addr);
            ha.access(kind, addr);
            hb.access(kind, addr);
            if i == 10_000 {
                // spot-check mid-run too
                assert_eq!(multi.counts(0), ha.counts());
            }
        }
        assert_eq!(multi.counts(0), ha.counts());
        assert_eq!(multi.counts(1), hb.counts());
    }

    #[test]
    fn larger_l2_never_misses_more() {
        let base_cfg = base();
        let l2s: Vec<CacheConfig> = [4096u64, 8192, 16384, 32768]
            .iter()
            .map(|&s| CacheConfig::new(format!("L2-{s}"), s, 8, 64).unwrap())
            .collect();
        let mut multi = MultiConfig::new(&base_cfg, l2s);
        let mut x: u64 = 42;
        for _ in 0..50_000 {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            multi.access(MemAccessKind::Load, ((x >> 12) % 131_072) & !7);
        }
        for i in 1..multi.num_configs() {
            assert!(
                multi.counts(i).l2d_misses <= multi.counts(i - 1).l2d_misses,
                "LRU inclusion violated between configs {} and {}",
                i - 1,
                i
            );
        }
    }
}
