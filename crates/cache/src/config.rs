//! Validated cache and TLB configurations.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Error produced when constructing an invalid [`CacheConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheConfigError {
    /// Size, block size, or associativity was zero.
    Zero {
        /// Which field was zero.
        field: &'static str,
    },
    /// A field that must be a power of two was not.
    NotPowerOfTwo {
        /// Which field was not a power of two.
        field: &'static str,
        /// Its value.
        value: u64,
    },
    /// `size / (block * assoc)` does not yield a whole power-of-two set count.
    InconsistentGeometry {
        /// Total capacity in bytes.
        size_bytes: u64,
        /// Associativity (ways).
        assoc: u32,
        /// Block size in bytes.
        block_bytes: u64,
    },
}

impl fmt::Display for CacheConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CacheConfigError::Zero { field } => write!(f, "cache {field} must be nonzero"),
            CacheConfigError::NotPowerOfTwo { field, value } => {
                write!(f, "cache {field} must be a power of two, got {value}")
            }
            CacheConfigError::InconsistentGeometry {
                size_bytes,
                assoc,
                block_bytes,
            } => write!(
                f,
                "cache geometry is inconsistent: {size_bytes} bytes / ({assoc} ways x \
                 {block_bytes}-byte blocks) is not a power-of-two set count"
            ),
        }
    }
}

impl Error for CacheConfigError {}

/// Geometry of one set-associative cache.
///
/// Constructed via [`CacheConfig::new`], which validates that all fields are
/// nonzero powers of two and that the geometry is self-consistent.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CacheConfig {
    name: String,
    size_bytes: u64,
    assoc: u32,
    block_bytes: u64,
}

impl CacheConfig {
    /// Creates a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns a [`CacheConfigError`] if any field is zero or not a power of
    /// two, or if the implied set count is not a power of two.
    pub fn new(
        name: impl Into<String>,
        size_bytes: u64,
        assoc: u32,
        block_bytes: u64,
    ) -> Result<CacheConfig, CacheConfigError> {
        fn pow2(field: &'static str, value: u64) -> Result<(), CacheConfigError> {
            if value == 0 {
                Err(CacheConfigError::Zero { field })
            } else if !value.is_power_of_two() {
                Err(CacheConfigError::NotPowerOfTwo { field, value })
            } else {
                Ok(())
            }
        }
        pow2("size", size_bytes)?;
        pow2("associativity", u64::from(assoc))?;
        pow2("block size", block_bytes)?;
        let ways_bytes = block_bytes * u64::from(assoc);
        if ways_bytes == 0
            || !size_bytes.is_multiple_of(ways_bytes)
            || !(size_bytes / ways_bytes).is_power_of_two()
        {
            return Err(CacheConfigError::InconsistentGeometry {
                size_bytes,
                assoc,
                block_bytes,
            });
        }
        Ok(CacheConfig {
            name: name.into(),
            size_bytes,
            assoc,
            block_bytes,
        })
    }

    /// Human-readable name (e.g. `"L1D"`, `"L2-512K-8w"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total capacity in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    /// Number of ways per set.
    pub fn assoc(&self) -> u32 {
        self.assoc
    }

    /// Block (line) size in bytes.
    pub fn block_bytes(&self) -> u64 {
        self.block_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size_bytes / (self.block_bytes * u64::from(self.assoc))
    }

    /// Block number of a byte address (address divided by block size).
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr / self.block_bytes
    }

    /// Set index of a byte address.
    #[inline]
    pub fn set_of(&self, addr: u64) -> u64 {
        self.block_of(addr) % self.sets()
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {} KB, {}-way, {}B blocks, {} sets",
            self.name,
            self.size_bytes / 1024,
            self.assoc,
            self.block_bytes,
            self.sets()
        )
    }
}

/// Geometry of a fully-associative TLB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct TlbConfig {
    /// Number of entries.
    pub entries: u32,
    /// Page size in bytes (must be a power of two).
    pub page_bytes: u64,
}

impl TlbConfig {
    /// A 32-entry, 4 KB-page TLB — the default used throughout the paper's
    /// experiments.
    pub fn default_tlb() -> TlbConfig {
        TlbConfig {
            entries: 32,
            page_bytes: 4096,
        }
    }

    /// Page number of a byte address.
    #[inline]
    pub fn page_of(self, addr: u64) -> u64 {
        addr / self.page_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config_geometry() {
        let c = CacheConfig::new("L1D", 32 * 1024, 4, 64).unwrap();
        assert_eq!(c.sets(), 128);
        assert_eq!(c.block_of(0x1000), 0x40);
        assert_eq!(c.set_of(0x1000), 0x40);
        assert_eq!(c.set_of(0x1000 + 128 * 64), 0x40); // wraps around
    }

    #[test]
    fn rejects_zero_and_non_power_of_two() {
        assert!(matches!(
            CacheConfig::new("c", 0, 4, 64),
            Err(CacheConfigError::Zero { field: "size" })
        ));
        assert!(matches!(
            CacheConfig::new("c", 3000, 4, 64),
            Err(CacheConfigError::NotPowerOfTwo { field: "size", .. })
        ));
        assert!(matches!(
            CacheConfig::new("c", 32768, 3, 64),
            Err(CacheConfigError::NotPowerOfTwo {
                field: "associativity",
                ..
            })
        ));
        assert!(matches!(
            CacheConfig::new("c", 32768, 4, 48),
            Err(CacheConfigError::NotPowerOfTwo {
                field: "block size",
                ..
            })
        ));
    }

    #[test]
    fn rejects_inconsistent_geometry() {
        // 1024 bytes / (4 ways * 512B blocks) = 0.5 sets
        assert!(matches!(
            CacheConfig::new("c", 1024, 4, 512),
            Err(CacheConfigError::InconsistentGeometry { .. })
        ));
    }

    #[test]
    fn fully_associative_is_expressible() {
        // size == assoc * block -> 1 set
        let c = CacheConfig::new("fa", 64 * 32, 32, 64).unwrap();
        assert_eq!(c.sets(), 1);
    }

    #[test]
    fn display_mentions_geometry() {
        let c = CacheConfig::new("L2", 512 * 1024, 8, 64).unwrap();
        let s = c.to_string();
        assert!(s.contains("512 KB"));
        assert!(s.contains("8-way"));
    }

    #[test]
    fn tlb_pages() {
        let t = TlbConfig::default_tlb();
        assert_eq!(t.page_of(4095), 0);
        assert_eq!(t.page_of(4096), 1);
    }

    #[test]
    fn error_messages_are_nonempty() {
        let e = CacheConfig::new("c", 3000, 4, 64).unwrap_err();
        assert!(!e.to_string().is_empty());
    }
}
