//! Set-associative LRU cache model.

use crate::config::CacheConfig;

/// Result of a single cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// True if the access hit.
    pub hit: bool,
    /// Block number evicted by this access, if a valid block was displaced.
    pub evicted: Option<u64>,
}

/// A set-associative cache with true LRU replacement.
///
/// The cache tracks tags only (no data), which is all that miss-count
/// profiling and timing simulation require. Accesses are classified as hit
/// or miss and update recency; misses allocate (write-allocate for stores).
///
/// # Example
///
/// ```
/// use mim_cache::{CacheConfig, SetAssocCache};
///
/// // Tiny 2-way cache with two sets of 64-byte blocks.
/// let mut c = SetAssocCache::new(CacheConfig::new("toy", 256, 2, 64).unwrap());
/// assert!(!c.access(0).hit);
/// assert!(!c.access(128).hit);  // same set (2 sets: block 0 and block 2 map to set 0)
/// assert!(c.access(0).hit);     // still resident
/// assert!(!c.access(256).hit);  // evicts LRU of set 0 (block 2)
/// assert!(!c.access(128).hit);  // block 2 was evicted
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    config: CacheConfig,
    /// Tags per set, most-recently-used first; `INVALID` marks empty ways.
    tags: Vec<u64>,
    sets: u64,
    ways: usize,
    accesses: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl SetAssocCache {
    /// Creates an empty (all-invalid) cache with the given geometry.
    pub fn new(config: CacheConfig) -> SetAssocCache {
        let sets = config.sets();
        let ways = config.assoc() as usize;
        SetAssocCache {
            tags: vec![INVALID; (sets as usize) * ways],
            sets,
            ways,
            config,
            accesses: 0,
            misses: 0,
        }
    }

    /// The cache's geometry.
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Miss rate (0 if no accesses yet).
    pub fn miss_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses as f64
        }
    }

    /// Resets counters (contents are preserved).
    pub fn reset_counters(&mut self) {
        self.accesses = 0;
        self.misses = 0;
    }

    /// Accesses the byte address, updating LRU state and counters.
    ///
    /// Reads and writes behave identically (write-allocate); the caller can
    /// use [`probe`](SetAssocCache::probe) for a side-effect-free lookup.
    pub fn access(&mut self, addr: u64) -> AccessResult {
        self.accesses += 1;
        let block = self.config.block_of(addr);
        let set = (block % self.sets) as usize;
        let base = set * self.ways;
        let set_tags = &mut self.tags[base..base + self.ways];

        if let Some(pos) = set_tags.iter().position(|&t| t == block) {
            // Hit: move to MRU position.
            set_tags[..=pos].rotate_right(1);
            return AccessResult {
                hit: true,
                evicted: None,
            };
        }

        // Miss: evict LRU way, insert at MRU.
        self.misses += 1;
        let victim = set_tags[self.ways - 1];
        set_tags.rotate_right(1);
        set_tags[0] = block;
        AccessResult {
            hit: false,
            evicted: (victim != INVALID).then_some(victim),
        }
    }

    /// Looks up the address without updating recency or counters.
    pub fn probe(&self, addr: u64) -> bool {
        let block = self.config.block_of(addr);
        let set = (block % self.sets) as usize;
        let base = set * self.ways;
        self.tags[base..base + self.ways].contains(&block)
    }

    /// Invalidates all contents and resets counters.
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.reset_counters();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn toy(size: u64, assoc: u32) -> SetAssocCache {
        SetAssocCache::new(CacheConfig::new("toy", size, assoc, 64).unwrap())
    }

    #[test]
    fn cold_misses_then_hits() {
        let mut c = toy(4096, 4);
        assert!(!c.access(0).hit);
        assert!(c.access(0).hit);
        assert!(c.access(63).hit); // same block
        assert!(!c.access(64).hit); // next block
        assert_eq!(c.accesses(), 4);
        assert_eq!(c.misses(), 2);
        assert!((c.miss_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn lru_eviction_order() {
        // 1 set, 2 ways.
        let mut c = toy(128, 2);
        c.access(0); // block 0
        c.access(64); // block 1
        c.access(0); // touch block 0 -> block 1 is LRU
        let r = c.access(128); // block 2 evicts block 1
        assert_eq!(r.evicted, Some(1));
        assert!(c.probe(0));
        assert!(!c.probe(64));
        assert!(c.probe(128));
    }

    #[test]
    fn conflict_misses_respect_set_mapping() {
        // 2 sets, 1 way: blocks 0,2,4.. -> set 0; 1,3,5.. -> set 1.
        let mut c = toy(128, 1);
        c.access(0); // set 0
        c.access(64); // set 1
        assert!(c.access(0).hit); // set 0 undisturbed
        c.access(128); // set 0, evicts block 0
        assert!(!c.access(0).hit);
        assert!(c.access(64).hit); // set 1 untouched throughout
    }

    #[test]
    fn probe_has_no_side_effects() {
        let mut c = toy(128, 2);
        c.access(0);
        c.access(64);
        // probe the LRU block; must not refresh recency
        assert!(c.probe(0));
        c.access(128); // evicts true LRU = block 0
        assert!(!c.probe(0));
        assert!(c.probe(64));
    }

    #[test]
    fn flush_invalidates() {
        let mut c = toy(4096, 4);
        c.access(0);
        c.flush();
        assert!(!c.probe(0));
        assert_eq!(c.accesses(), 0);
        assert!(!c.access(0).hit);
    }

    #[test]
    fn bigger_cache_never_misses_more_lru_inclusion() {
        // LRU inclusion property: doubling associativity at same set count
        // cannot increase misses (checked on a pseudo-random trace).
        let mut small = SetAssocCache::new(CacheConfig::new("s", 2048, 2, 64).unwrap());
        let mut large = SetAssocCache::new(CacheConfig::new("l", 4096, 4, 64).unwrap());
        let mut x: u64 = 0x12345;
        for _ in 0..10_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let addr = (x >> 20) % 65536;
            small.access(addr);
            large.access(addr);
        }
        assert!(large.misses() <= small.misses());
    }
}
