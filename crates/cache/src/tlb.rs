//! Translation lookaside buffers.

use crate::cache::SetAssocCache;
use crate::config::{CacheConfig, TlbConfig};

/// A fully-associative, LRU-replaced TLB.
///
/// Internally modeled as a one-set cache whose "blocks" are pages. The
/// mechanistic model treats TLB misses exactly like cache misses: they block
/// the pipeline for a fixed walk latency (paper §3.3).
///
/// # Example
///
/// ```
/// use mim_cache::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig { entries: 2, page_bytes: 4096 });
/// assert!(!tlb.access(0).hit);        // page 0: cold miss
/// assert!(tlb.access(1234).hit);      // same page
/// assert!(!tlb.access(4096).hit);     // page 1
/// assert!(!tlb.access(2 * 4096).hit); // page 2 evicts page 0
/// assert!(!tlb.access(0).hit);
/// ```
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: SetAssocCache,
    config: TlbConfig,
}

impl Tlb {
    /// Creates an empty TLB.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two or `page_bytes` is
    /// not a power of two (TLB geometries in the design space are fixed, so
    /// this is a programming error rather than a user input).
    pub fn new(config: TlbConfig) -> Tlb {
        let cache_config = CacheConfig::new(
            "TLB",
            config.page_bytes * u64::from(config.entries),
            config.entries,
            config.page_bytes,
        )
        .expect("invalid TLB geometry");
        Tlb {
            inner: SetAssocCache::new(cache_config),
            config,
        }
    }

    /// The TLB's geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Translates the byte address, returning hit/miss and updating LRU.
    pub fn access(&mut self, addr: u64) -> crate::cache::AccessResult {
        self.inner.access(addr)
    }

    /// Total accesses observed.
    pub fn accesses(&self) -> u64 {
        self.inner.accesses()
    }

    /// Total misses observed.
    pub fn misses(&self) -> u64 {
        self.inner.misses()
    }

    /// Invalidates all entries and resets counters.
    pub fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tlb_is_fully_associative() {
        // 4 entries: pages 0..4 all resident regardless of address bits.
        let mut t = Tlb::new(TlbConfig {
            entries: 4,
            page_bytes: 4096,
        });
        for p in 0..4u64 {
            assert!(!t.access(p * 4096).hit);
        }
        for p in 0..4u64 {
            assert!(t.access(p * 4096 + 8).hit);
        }
        assert_eq!(t.misses(), 4);
        assert_eq!(t.accesses(), 8);
    }

    #[test]
    fn default_geometry_matches_paper_setup() {
        let t = Tlb::new(TlbConfig::default_tlb());
        assert_eq!(t.config().entries, 32);
        assert_eq!(t.config().page_bytes, 4096);
    }

    #[test]
    fn lru_within_tlb() {
        let mut t = Tlb::new(TlbConfig {
            entries: 2,
            page_bytes: 4096,
        });
        t.access(0); // page 0
        t.access(4096); // page 1
        t.access(100); // touch page 0
        t.access(8192); // page 2 evicts page 1
        assert!(t.access(50).hit); // page 0 survives
        assert!(!t.access(4096).hit); // page 1 gone
    }
}
