//! Property-based tests for the cache substrate.

use mim_cache::{
    CacheConfig, Hierarchy, HierarchyConfig, MemAccessKind, MultiConfig, SetAssocCache,
    StackDistance, TlbConfig,
};
use proptest::prelude::*;

/// A reference fully-associative LRU cache (linear scan).
struct NaiveLru {
    stack: Vec<u64>,
    capacity: usize,
    misses: u64,
}

impl NaiveLru {
    fn new(capacity: usize) -> NaiveLru {
        NaiveLru {
            stack: Vec::new(),
            capacity,
            misses: 0,
        }
    }
    fn access(&mut self, block: u64) {
        if let Some(pos) = self.stack.iter().position(|&b| b == block) {
            self.stack.remove(pos);
        } else {
            self.misses += 1;
            if self.stack.len() == self.capacity {
                self.stack.pop();
            }
        }
        self.stack.insert(0, block);
    }
}

fn addr_stream() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..4096, 50..800)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// A one-set W-way SetAssocCache is exactly a W-entry LRU stack.
    #[test]
    fn fully_associative_cache_matches_reference(blocks in addr_stream(), ways_log in 1u32..5) {
        let ways = 1u32 << ways_log;
        let config = CacheConfig::new("fa", 64 * u64::from(ways), ways, 64).unwrap();
        let mut cache = SetAssocCache::new(config);
        let mut reference = NaiveLru::new(ways as usize);
        for &b in &blocks {
            cache.access(b * 64);
            reference.access(b);
        }
        prop_assert_eq!(cache.misses(), reference.misses);
    }

    /// Stack-distance profiling predicts the exact miss count of every
    /// fully-associative LRU capacity.
    #[test]
    fn stack_distance_matches_reference(blocks in addr_stream(), capacity in 1usize..64) {
        let mut sd = StackDistance::new(1);
        let mut reference = NaiveLru::new(capacity);
        for &b in &blocks {
            sd.access(b);
            reference.access(b);
        }
        prop_assert_eq!(sd.misses_for_capacity(capacity), reference.misses);
    }

    /// LRU inclusion: more ways at the same set count never miss more.
    #[test]
    fn associativity_inclusion(blocks in addr_stream()) {
        let mut two = SetAssocCache::new(CacheConfig::new("2w", 8 * 64 * 2, 2, 64).unwrap());
        let mut four = SetAssocCache::new(CacheConfig::new("4w", 8 * 64 * 4, 4, 64).unwrap());
        for &b in &blocks {
            two.access(b * 64);
            four.access(b * 64);
        }
        prop_assert!(four.misses() <= two.misses());
    }

    /// The multi-configuration sweep agrees exactly with independent
    /// hierarchies for arbitrary access streams.
    #[test]
    fn multi_config_equals_independent(accesses in proptest::collection::vec((0u64..3, 0u64..65_536), 100..600)) {
        let base = HierarchyConfig {
            l1i: CacheConfig::new("L1I", 1024, 2, 64).unwrap(),
            l1d: CacheConfig::new("L1D", 1024, 2, 64).unwrap(),
            l2: CacheConfig::new("L2", 8192, 4, 64).unwrap(),
            itlb: TlbConfig { entries: 4, page_bytes: 4096 },
            dtlb: TlbConfig { entries: 4, page_bytes: 4096 },
        };
        let l2a = CacheConfig::new("a", 4096, 4, 64).unwrap();
        let l2b = CacheConfig::new("b", 16384, 8, 64).unwrap();
        let mut multi = MultiConfig::new(&base, vec![l2a.clone(), l2b.clone()]);
        let mut ha = Hierarchy::new(base.clone().with_l2(l2a));
        let mut hb = Hierarchy::new(base.clone().with_l2(l2b));
        for &(kind, addr) in &accesses {
            let kind = match kind {
                0 => MemAccessKind::Fetch,
                1 => MemAccessKind::Load,
                _ => MemAccessKind::Store,
            };
            let addr = addr & !7;
            multi.access(kind, addr);
            ha.access(kind, addr);
            hb.access(kind, addr);
        }
        prop_assert_eq!(multi.counts(0), ha.counts());
        prop_assert_eq!(multi.counts(1), hb.counts());
    }

    /// Histogram mass conservation: every access is either a cold miss or
    /// appears in the reuse histogram.
    #[test]
    fn stack_distance_mass_conservation(blocks in addr_stream()) {
        let mut sd = StackDistance::new(1);
        for &b in &blocks {
            sd.access(b);
        }
        let reuse: u64 = sd.histogram().iter().sum();
        prop_assert_eq!(reuse + sd.cold_misses(), sd.accesses());
        prop_assert_eq!(sd.misses_for_capacity(usize::MAX >> 8), sd.cold_misses());
    }
}
