//! Integration tests: signature extraction on real kernels, the
//! end-to-end subset workflow, determinism across thread counts, and the
//! behaviour-grid bridge from mim-validate.

use mim_core::{DesignSpace, MachineConfig};
use mim_runner::{WorkloadSpec, WorkloadStore};
use mim_select::{KSelection, Selection, Signature, SubsetReport, SubsetRun};
use mim_validate::BehaviorSpace;
use mim_workloads::{mibench, spec, WorkloadSize};

fn width_space() -> DesignSpace {
    DesignSpace::new(MachineConfig::default_config())
        .with_widths(vec![1, 2, 3, 4])
        .expect("distinct widths")
}

#[test]
fn signatures_separate_memory_from_compute_kernels() {
    let store = WorkloadStore::new();
    let sha = Signature::extract(
        &store,
        &WorkloadSpec::from(mibench::sha()),
        WorkloadSize::Tiny,
        None,
    )
    .unwrap();
    let mcf = Signature::extract(
        &store,
        &WorkloadSpec::from(spec::mcf_like()),
        WorkloadSize::Tiny,
        None,
    )
    .unwrap();
    // The memory-bound pointer chaser touches far more lines and reuses
    // them at far longer distances than the register-resident hash.
    assert!(mcf.footprint_blocks > 4 * sha.footprint_blocks);
    assert!(mcf.reuse_p90 > sha.reuse_p90);
    assert!(mcf.frac_load > sha.frac_load);
    // Both signatures are fully normalized and displayable.
    for signature in [&sha, &mcf] {
        let vector = signature.feature_vector();
        assert_eq!(vector.len(), Signature::feature_names().len());
        assert!(vector.iter().all(|v| (0.0..=1.0).contains(v)));
        assert!(!signature.to_string().is_empty());
    }
    // Extraction is deterministic and survives a JSON round trip.
    let again = Signature::extract(
        &store,
        &WorkloadSpec::from(mibench::sha()),
        WorkloadSize::Tiny,
        None,
    )
    .unwrap();
    assert_eq!(sha, again);
    let json = serde_json::to_string(&sha).unwrap();
    let back: Signature = serde_json::from_str(&json).unwrap();
    assert_eq!(back, sha);
}

#[test]
fn signature_extraction_adds_no_functional_executions_beyond_the_recording() {
    let store = WorkloadStore::new();
    let workload = WorkloadSpec::from(mibench::crc32());
    // Prime the store the way any sweep would.
    store.trace(&workload, WorkloadSize::Tiny, None).unwrap();
    let executions = store.functional_executions();
    Signature::extract(&store, &workload, WorkloadSize::Tiny, None).unwrap();
    assert_eq!(
        store.functional_executions(),
        executions,
        "characterization must replay the existing recording"
    );
}

#[test]
fn subset_run_extrapolates_with_small_error_on_mibench() {
    // Width × depth/frequency grid: 16 design points whose CPI differs
    // materially at Tiny size (unlike the L2 axis, which tiny footprints
    // barely exercise), so Kendall tau measures real ranking fidelity.
    let space = DesignSpace::new(MachineConfig::default_config())
        .with_widths(vec![1, 2, 3, 4])
        .expect("distinct widths")
        .with_depth_freq(vec![(5, 1.0), (7, 1.5), (9, 2.0), (11, 2.5)])
        .expect("distinct depth/frequency pairs");
    let suite: Vec<_> = mibench::all().into_iter().take(10).collect();
    let report = SubsetRun::new(space)
        .title("subset integration")
        .workloads(suite)
        .size(WorkloadSize::Tiny)
        .selection(Selection {
            k: KSelection::Silhouette { max_k: 0 },
            max_fraction: 0.3,
            ..Selection::default()
        })
        .verify(true)
        .sim_probes(1)
        .threads(2)
        .run()
        .expect("subset run");

    assert_eq!(report.workloads.len(), 10);
    assert_eq!(report.signatures.len(), 10);
    assert!(report.subset_fraction <= 0.3 + 1e-12);
    assert_eq!(report.weighted_cpi.len(), 16, "one CPI per design point");
    let total: f64 = report.selection.weights().iter().sum();
    assert!((total - 1.0).abs() < 1e-12);

    let verify = report.verify.as_ref().expect("verification enabled");
    assert_eq!(verify.exhaustive_cpi.len(), 16);
    assert!(
        verify.rank_tau >= 0.85,
        "subset must reproduce the design-point ranking: tau = {}",
        verify.rank_tau
    );
    let frontier = report.frontier.as_ref().expect("frontier enabled");
    assert!(!frontier.subset.is_empty());
    assert!(frontier.recall.is_some());

    let probe = report.sim_probe.as_ref().expect("probes enabled");
    assert_eq!(probe.machines.len(), 1);
    assert!(probe.bound_percent.is_finite());

    // Reports parse back and re-serialize to identical bytes.
    let json = report.to_json();
    let back = SubsetReport::from_json(&json).expect("parse back");
    assert_eq!(back.to_json(), json);
}

#[test]
fn subset_reports_are_byte_identical_across_thread_counts() {
    let run = |threads: usize| {
        SubsetRun::new(width_space())
            .title("determinism")
            .workloads(mibench::all().into_iter().take(6))
            .size(WorkloadSize::Tiny)
            .verify(true)
            .threads(threads)
            .run()
            .expect("subset run")
            .to_json()
    };
    assert_eq!(run(1), run(8));
}

#[test]
fn behaviour_grid_flows_through_selection() {
    // A small synthetic behaviour grid stands in for a workload suite.
    let grid = BehaviorSpace::default_grid()
        .with_memory(vec![
            mim_validate::MemoryProfile::hot("hot", 1 << 10),
            mim_validate::MemoryProfile::random("mem", 1 << 15),
        ])
        .unwrap()
        .with_branch(vec![
            mim_validate::BranchProfile::new("bp", 14, 0),
            mim_validate::BranchProfile::new("br", 14, 100),
        ])
        .unwrap();
    assert_eq!(grid.len(), 16);
    let report = SubsetRun::new(width_space())
        .title("behaviour grid selection")
        .workloads(grid.workload_specs())
        .size(WorkloadSize::Tiny)
        .selection(Selection {
            k: KSelection::Bic { max_k: 4 },
            max_fraction: 0.25,
            ..Selection::default()
        })
        .frontier(false)
        .threads(2)
        .run()
        .expect("subset run");
    assert!(report.selection.k <= 4);
    assert!(report.subset_fraction <= 0.25 + 1e-12);
    // Synthetic points cluster by behaviour: every cluster is non-empty
    // and the members partition the grid.
    assert_eq!(report.selection.suite_len(), 16);
    // No verification ran, so no economy can be claimed.
    assert_eq!(report.timing.verify_seconds, 0.0);
    assert_eq!(report.sweep_speedup(), 1.0);
}
