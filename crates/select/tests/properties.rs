//! Property tests for the clustering layer: permutation invariance,
//! seed determinism, non-empty clusters, weight normalization, and
//! silhouette bounds.

use mim_select::{
    silhouette, Agglomerative, ClusterAlgorithm, Clusters, Distance, FeaturePoint, KMedoids,
    KSelection, RepresentativeSet, Selection, Signature,
};
use proptest::prelude::*;

/// Deterministic shuffle driven by a seed (SplitMix64 + Fisher–Yates).
fn shuffled<T: Clone>(items: &[T], seed: u64) -> Vec<T> {
    let mut rng = mim_core::SplitMix64::new(seed);
    let mut shuffled: Vec<T> = items.to_vec();
    for i in (1..shuffled.len()).rev() {
        let j = rng.below(i + 1);
        shuffled.swap(i, j);
    }
    shuffled
}

/// Coarse-grid points (plenty of duplicates and ties) with unique names.
fn points_from(raw: &[(u32, u32, u32)]) -> Vec<FeaturePoint> {
    raw.iter()
        .enumerate()
        .map(|(i, &(a, b, c))| {
            FeaturePoint::new(
                format!("w{i:03}"),
                vec![f64::from(a) / 8.0, f64::from(b) / 8.0, f64::from(c) / 8.0],
            )
        })
        .collect()
}

/// The canonical content of a clustering: per cluster, the medoid name
/// and the sorted member names — the representation that must be
/// invariant under input permutation.
fn canonical(points: &[FeaturePoint], clusters: &Clusters) -> Vec<(String, Vec<String>)> {
    clusters
        .members
        .iter()
        .zip(&clusters.medoids)
        .map(|(members, &medoid)| {
            (
                points[medoid].name.clone(),
                members.iter().map(|&m| points[m].name.clone()).collect(),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// K-medoids under a fixed seed is byte-deterministic and invariant
    /// to the order workloads are handed in, and never produces an empty
    /// cluster.
    #[test]
    fn kmedoids_is_permutation_invariant_and_deterministic(
        raw in proptest::collection::vec((0u32..9, 0u32..9, 0u32..9), 2..40),
        k in 1usize..6,
        shuffle_seed in 0u64..1_000_000,
    ) {
        let points = points_from(&raw);
        let k = k.min(points.len());
        let algorithm = KMedoids::new().seed(42);
        let first = algorithm.cluster(&points, &Distance::Euclidean, k).unwrap();
        // Byte determinism: the identical call yields identical JSON.
        let again = algorithm.cluster(&points, &Distance::Euclidean, k).unwrap();
        prop_assert_eq!(
            serde_json::to_string(&first).unwrap(),
            serde_json::to_string(&again).unwrap()
        );
        // Every cluster is non-empty and owns its medoid.
        prop_assert_eq!(first.members.len(), k);
        for (c, members) in first.members.iter().enumerate() {
            prop_assert!(!members.is_empty());
            prop_assert!(members.contains(&first.medoids[c]));
        }
        // Permutation invariance: clustering the shuffled suite yields
        // the same medoid names and member name-sets.
        let permuted = shuffled(&points, shuffle_seed);
        let second = algorithm.cluster(&permuted, &Distance::Euclidean, k).unwrap();
        prop_assert_eq!(canonical(&points, &first), canonical(&permuted, &second));
    }

    /// The same invariants for the agglomerative dendrogram cut.
    #[test]
    fn agglomerative_is_permutation_invariant(
        raw in proptest::collection::vec((0u32..9, 0u32..9, 0u32..9), 2..24),
        k in 1usize..5,
        shuffle_seed in 0u64..1_000_000,
    ) {
        let points = points_from(&raw);
        let k = k.min(points.len());
        let algorithm = Agglomerative::new();
        let first = algorithm.cluster(&points, &Distance::Manhattan, k).unwrap();
        prop_assert_eq!(first.members.len(), k);
        for members in &first.members {
            prop_assert!(!members.is_empty());
        }
        let permuted = shuffled(&points, shuffle_seed);
        let second = algorithm.cluster(&permuted, &Distance::Manhattan, k).unwrap();
        prop_assert_eq!(canonical(&points, &first), canonical(&permuted, &second));
    }

    /// Silhouette scores always land in [-1, 1], whatever the clustering.
    #[test]
    fn silhouette_is_bounded(
        raw in proptest::collection::vec((0u32..9, 0u32..9, 0u32..9), 2..30),
        k in 1usize..6,
    ) {
        let points = points_from(&raw);
        let k = k.min(points.len());
        let clusters = KMedoids::new().cluster(&points, &Distance::Euclidean, k).unwrap();
        let score = silhouette(&points, &Distance::Euclidean, &clusters);
        prop_assert!((-1.0..=1.0).contains(&score), "silhouette {}", score);
    }

    /// Representative weights always sum to 1 within 1e-12, and the
    /// subset respects the size cap.
    #[test]
    fn representative_weights_sum_to_one(
        raw in proptest::collection::vec((0u32..9, 0u32..9, 0u32..9), 4..40),
        fixed_k in 1usize..8,
    ) {
        let signatures: Vec<Signature> = points_from(&raw)
            .into_iter()
            .map(|p| Signature {
                name: p.name,
                num_insts: 1000,
                frac_alu: p.features[0],
                frac_mul: 0.0,
                frac_div: 0.0,
                frac_load: p.features[1],
                frac_store: 0.0,
                frac_branch: p.features[2],
                frac_jump: 0.0,
                branch_taken_rate: 0.5,
                branch_transition_rate: p.features[0],
                footprint_blocks: 100,
                cold_fraction: 0.1,
                reuse_p50: 1.0,
                reuse_p90: 2.0,
                reuse_p99: 3.0,
                mean_dep_distance: 4.0,
                short_dep_fraction: 0.4,
                mlp: 1.5,
            })
            .collect();
        let selection = Selection {
            k: KSelection::Fixed(fixed_k),
            max_fraction: 0.5,
            ..Selection::default()
        };
        let set = RepresentativeSet::select(&signatures, &selection).unwrap();
        let total: f64 = set.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-12, "weights sum to {}", total);
        prop_assert!(set.len() <= signatures.len().div_ceil(2), "cap violated");
        prop_assert_eq!(set.suite_len(), signatures.len());
        prop_assert!((-1.0..=1.0).contains(&set.silhouette));
    }
}
