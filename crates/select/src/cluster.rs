//! Deterministic clustering over signature feature vectors.
//!
//! Two algorithms behind one [`ClusterAlgorithm`] interface: seeded
//! [`KMedoids`] (PAM-style alternation) and average-linkage
//! [`Agglomerative`] hierarchical clustering with a [`Dendrogram`] cut.
//! Both are **order-canonical**: points are processed in name order
//! internally, every tie is broken by name, and clusters come back
//! ordered by medoid name — so the same suite clusters identically no
//! matter how the caller happened to enumerate it, and a fixed seed
//! reproduces byte-identical reports.

use serde::{Deserialize, Serialize};

use crate::distance::Distance;
use crate::error::SelectError;

/// A named point in signature feature space.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeaturePoint {
    /// Workload name (must be unique within a clustering).
    pub name: String,
    /// Normalized feature vector.
    pub features: Vec<f64>,
}

impl FeaturePoint {
    /// Creates a feature point.
    pub fn new(name: impl Into<String>, features: Vec<f64>) -> FeaturePoint {
        FeaturePoint {
            name: name.into(),
            features,
        }
    }
}

/// The outcome of one clustering: `k` non-empty clusters over the input
/// points, each with a medoid (the member minimizing total intra-cluster
/// distance).
///
/// Indices refer to the *input* point slice. Clusters are ordered by
/// medoid name and members within a cluster by name, so the structure is
/// identical for any permutation of the same input set.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Clusters {
    /// Number of clusters.
    pub k: usize,
    /// Per input point: the id of the cluster it belongs to.
    pub assignments: Vec<usize>,
    /// Per cluster: member point indices, ordered by name.
    pub members: Vec<Vec<usize>>,
    /// Per cluster: the medoid's point index.
    pub medoids: Vec<usize>,
}

/// A clustering algorithm over feature points.
pub trait ClusterAlgorithm {
    /// Display name recorded in reports.
    fn name(&self) -> String;

    /// Partitions `points` into exactly `k` non-empty clusters.
    ///
    /// # Errors
    ///
    /// Returns a [`SelectError`] for an empty input, duplicate names,
    /// `k == 0`, or `k` exceeding the point count.
    fn cluster(
        &self,
        points: &[FeaturePoint],
        distance: &Distance,
        k: usize,
    ) -> Result<Clusters, SelectError>;

    /// Partitions the same points at several candidate `k`s, sharing
    /// whatever `k`-independent preparation the algorithm needs (the
    /// distance matrix; for hierarchical clustering, the whole merge
    /// tree) — the auto-`k` search path. The default just loops over
    /// [`cluster`](ClusterAlgorithm::cluster).
    ///
    /// # Errors
    ///
    /// As [`cluster`](ClusterAlgorithm::cluster), for the first failing `k`.
    fn cluster_many(
        &self,
        points: &[FeaturePoint],
        distance: &Distance,
        ks: &[usize],
    ) -> Result<Vec<Clusters>, SelectError> {
        ks.iter()
            .map(|&k| self.cluster(points, distance, k))
            .collect()
    }
}

/// The workspace's deterministic random stream: the seed fully
/// determines k-medoids initialization.
use mim_core::SplitMix64;

/// The name-sorted view every algorithm operates on, plus the full
/// pairwise distance matrix (suites are tens-to-hundreds of workloads, so
/// the O(n²) matrix is the cheap part).
struct Prepared {
    /// `order[s]` = input index of the s-th point in name order.
    order: Vec<usize>,
    /// Row-major n×n distances between sorted-view points.
    matrix: Vec<f64>,
    n: usize,
}

impl Prepared {
    fn build(points: &[FeaturePoint], distance: &Distance) -> Result<Prepared, SelectError> {
        if points.is_empty() {
            return Err(SelectError::config("no points to cluster"));
        }
        let features = points[0].features.len();
        distance.validate(features)?;
        for p in points {
            if p.features.len() != features {
                return Err(SelectError::config(format!(
                    "feature vector of `{}` has length {} (expected {features})",
                    p.name,
                    p.features.len()
                )));
            }
            if p.features.iter().any(|v| !v.is_finite()) {
                return Err(SelectError::config(format!(
                    "feature vector of `{}` contains a non-finite value",
                    p.name
                )));
            }
        }
        let mut order: Vec<usize> = (0..points.len()).collect();
        order.sort_by(|&a, &b| points[a].name.cmp(&points[b].name));
        for pair in order.windows(2) {
            if points[pair[0]].name == points[pair[1]].name {
                return Err(SelectError::config(format!(
                    "duplicate workload name `{}`",
                    points[pair[0]].name
                )));
            }
        }
        let n = order.len();
        let mut matrix = vec![0.0; n * n];
        for s in 0..n {
            for t in (s + 1)..n {
                let d = distance.between(&points[order[s]].features, &points[order[t]].features);
                matrix[s * n + t] = d;
                matrix[t * n + s] = d;
            }
        }
        Ok(Prepared { order, matrix, n })
    }

    fn dist(&self, s: usize, t: usize) -> f64 {
        self.matrix[s * self.n + t]
    }

    /// The member (sorted-view index) minimizing total distance to the
    /// cluster, ties broken toward the smaller (name-earlier) index.
    fn medoid_of(&self, members: &[usize]) -> usize {
        *members
            .iter()
            .min_by(|&&a, &&b| {
                let cost_a: f64 = members.iter().map(|&m| self.dist(a, m)).sum();
                let cost_b: f64 = members.iter().map(|&m| self.dist(b, m)).sum();
                cost_a.partial_cmp(&cost_b).unwrap().then(a.cmp(&b))
            })
            .expect("cluster is non-empty")
    }

    /// Converts sorted-view clusters (each a sorted member list) into the
    /// canonical [`Clusters`] over input indices.
    fn finish(&self, mut clusters: Vec<Vec<usize>>) -> Clusters {
        let medoids_sorted: Vec<usize> = clusters.iter().map(|c| self.medoid_of(c)).collect();
        // Canonical cluster order: ascending medoid (name order).
        let mut ids: Vec<usize> = (0..clusters.len()).collect();
        ids.sort_by_key(|&c| medoids_sorted[c]);
        let mut assignments = vec![0usize; self.n];
        let mut members = Vec::with_capacity(clusters.len());
        let mut medoids = Vec::with_capacity(clusters.len());
        for (new_id, &old_id) in ids.iter().enumerate() {
            for &s in &clusters[old_id] {
                assignments[self.order[s]] = new_id;
            }
            medoids.push(self.order[medoids_sorted[old_id]]);
            members.push(
                std::mem::take(&mut clusters[old_id])
                    .into_iter()
                    .map(|s| self.order[s])
                    .collect(),
            );
        }
        Clusters {
            k: members.len(),
            assignments,
            members,
            medoids,
        }
    }
}

/// Seeded, deterministic k-medoids (PAM-style alternation): seeded
/// farthest-point initialization, then alternate nearest-medoid
/// assignment and per-cluster medoid updates until the medoid set is
/// stable. The same seed over the same point *set* — in any order —
/// produces the identical clustering.
///
/// # Example
///
/// ```
/// use mim_select::{ClusterAlgorithm, Distance, FeaturePoint, KMedoids};
///
/// let points = vec![
///     FeaturePoint::new("a1", vec![0.0, 0.0]),
///     FeaturePoint::new("a2", vec![0.1, 0.0]),
///     FeaturePoint::new("b1", vec![1.0, 1.0]),
///     FeaturePoint::new("b2", vec![0.9, 1.0]),
/// ];
/// let clusters = KMedoids::new().cluster(&points, &Distance::Euclidean, 2).unwrap();
/// assert_eq!(clusters.k, 2);
/// assert_eq!(clusters.assignments[0], clusters.assignments[1]);
/// assert_ne!(clusters.assignments[0], clusters.assignments[2]);
/// ```
#[derive(Debug, Clone)]
pub struct KMedoids {
    seed: u64,
    max_iters: usize,
}

impl Default for KMedoids {
    fn default() -> KMedoids {
        KMedoids::new()
    }
}

impl KMedoids {
    /// A k-medoids instance with the default seed.
    pub fn new() -> KMedoids {
        KMedoids {
            seed: 0x6d69_6d53,
            max_iters: 64,
        }
    }

    /// Reseeds the initialization stream.
    pub fn seed(mut self, seed: u64) -> KMedoids {
        self.seed = seed;
        self
    }

    /// The PAM alternation over an already-built preparation.
    fn cluster_prepared(&self, prepared: &Prepared, k: usize) -> Result<Clusters, SelectError> {
        let n = prepared.n;
        if k == 0 || k > n {
            return Err(SelectError::config(format!(
                "k = {k} for {n} points (need 1 ..= {n})"
            )));
        }
        // Seeded farthest-point init: one random anchor, then repeatedly
        // the point farthest from its nearest chosen medoid (ties toward
        // the name-earlier point).
        let mut rng = SplitMix64::new(self.seed);
        let mut medoids = vec![rng.below(n)];
        while medoids.len() < k {
            let next = (0..n)
                .filter(|s| !medoids.contains(s))
                .max_by(|&a, &b| {
                    let da = medoids
                        .iter()
                        .map(|&m| prepared.dist(a, m))
                        .fold(f64::MAX, f64::min);
                    let db = medoids
                        .iter()
                        .map(|&m| prepared.dist(b, m))
                        .fold(f64::MAX, f64::min);
                    da.partial_cmp(&db).unwrap().then(b.cmp(&a))
                })
                .expect("k <= n leaves an unchosen point");
            medoids.push(next);
        }
        medoids.sort_unstable();

        let mut clusters: Vec<Vec<usize>> = Vec::new();
        for _ in 0..self.max_iters {
            // Assign: nearest medoid, ties toward the name-earlier medoid;
            // a medoid always anchors its own cluster.
            clusters = vec![Vec::new(); k];
            for s in 0..n {
                let home = match medoids.iter().position(|&m| m == s) {
                    Some(position) => position,
                    None => (0..k)
                        .min_by(|&a, &b| {
                            prepared
                                .dist(s, medoids[a])
                                .partial_cmp(&prepared.dist(s, medoids[b]))
                                .unwrap()
                                .then(medoids[a].cmp(&medoids[b]))
                        })
                        .expect("k >= 1"),
                };
                clusters[home].push(s);
            }
            // Update: each cluster's best medoid.
            let mut updated: Vec<usize> = clusters.iter().map(|c| prepared.medoid_of(c)).collect();
            updated.sort_unstable();
            if updated == medoids {
                break;
            }
            medoids = updated;
        }
        Ok(prepared.finish(clusters))
    }
}

impl ClusterAlgorithm for KMedoids {
    fn name(&self) -> String {
        format!("kmedoids-s{}", self.seed)
    }

    fn cluster(
        &self,
        points: &[FeaturePoint],
        distance: &Distance,
        k: usize,
    ) -> Result<Clusters, SelectError> {
        self.cluster_prepared(&Prepared::build(points, distance)?, k)
    }

    fn cluster_many(
        &self,
        points: &[FeaturePoint],
        distance: &Distance,
        ks: &[usize],
    ) -> Result<Vec<Clusters>, SelectError> {
        let prepared = Prepared::build(points, distance)?;
        ks.iter()
            .map(|&k| self.cluster_prepared(&prepared, k))
            .collect()
    }
}

/// One merge step of a hierarchical clustering: nodes `a` and `b` fuse at
/// the given average-linkage distance. Leaves are nodes `0..n`; the
/// `i`-th merge creates node `n + i`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Merge {
    /// First fused node (the one containing the name-earlier leaf).
    pub a: usize,
    /// Second fused node.
    pub b: usize,
    /// Average-linkage distance at which the fusion happened.
    pub distance: f64,
}

/// The full merge tree of an agglomerative clustering, cuttable at any
/// `k`. Leaf ids index the *input* point slice.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    /// Input index of each sorted-view leaf (leaf id `s` is input point
    /// `order[s]`).
    order: Vec<usize>,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of leaves.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True for a dendrogram over zero points (never constructed).
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The merge sequence, in fusion order (non-decreasing linkage
    /// distance is *not* guaranteed by average linkage, but determinism
    /// is).
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Cuts the tree into `k` clusters: applies the first `n - k` merges
    /// and returns the surviving groups as input-index member lists,
    /// each sorted by name, grouped in name order of their earliest
    /// member.
    ///
    /// # Errors
    ///
    /// Returns a [`SelectError`] unless `1 <= k <= n`.
    pub fn cut(&self, k: usize) -> Result<Vec<Vec<usize>>, SelectError> {
        Ok(self
            .cut_sorted(k)?
            .into_iter()
            .map(|members| members.into_iter().map(|s| self.order[s]).collect())
            .collect())
    }

    /// [`cut`](Dendrogram::cut) in sorted-view leaf indices (the space
    /// `Prepared` works in), saving the input-index round trip for
    /// internal callers.
    fn cut_sorted(&self, k: usize) -> Result<Vec<Vec<usize>>, SelectError> {
        if k == 0 || k > self.n {
            return Err(SelectError::config(format!(
                "cut at k = {k} on a {}-leaf dendrogram",
                self.n
            )));
        }
        // Union-find over node ids.
        let mut parent: Vec<usize> = (0..self.n + self.merges.len()).collect();
        fn root(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for (step, merge) in self.merges.iter().take(self.n - k).enumerate() {
            let node = self.n + step;
            let ra = root(&mut parent, merge.a);
            let rb = root(&mut parent, merge.b);
            parent[ra] = node;
            parent[rb] = node;
        }
        let mut groups: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
        for s in 0..self.n {
            groups.entry(root(&mut parent, s)).or_default().push(s);
        }
        // Canonical group order: by earliest (name-first) member.
        let mut groups: Vec<Vec<usize>> = groups.into_values().collect();
        groups.sort_by_key(|members| members[0]);
        Ok(groups)
    }
}

/// Average-linkage (UPGMA) agglomerative hierarchical clustering with
/// Lance–Williams updates and name-ordered tie-breaking. Produces a
/// [`Dendrogram`]; [`ClusterAlgorithm::cluster`] cuts it at `k` and
/// derives medoids per cluster.
///
/// # Example
///
/// ```
/// use mim_select::{Agglomerative, ClusterAlgorithm, Distance, FeaturePoint};
///
/// let points = vec![
///     FeaturePoint::new("a", vec![0.0]),
///     FeaturePoint::new("b", vec![0.1]),
///     FeaturePoint::new("c", vec![5.0]),
/// ];
/// let dendrogram = Agglomerative::new().dendrogram(&points, &Distance::Euclidean).unwrap();
/// assert_eq!(dendrogram.merges().len(), 2);
/// let cut = dendrogram.cut(2).unwrap();
/// assert_eq!(cut, vec![vec![0, 1], vec![2]]); // {a,b} fuse first
/// ```
#[derive(Debug, Clone, Default)]
pub struct Agglomerative;

impl Agglomerative {
    /// An average-linkage instance.
    pub fn new() -> Agglomerative {
        Agglomerative
    }

    /// Builds the full merge tree over the points.
    ///
    /// # Errors
    ///
    /// Returns a [`SelectError`] for an empty input or duplicate names.
    pub fn dendrogram(
        &self,
        points: &[FeaturePoint],
        distance: &Distance,
    ) -> Result<Dendrogram, SelectError> {
        Ok(Agglomerative::dendrogram_from(&Prepared::build(
            points, distance,
        )?))
    }

    /// The merge loop over an already-built preparation.
    fn dendrogram_from(prepared: &Prepared) -> Dendrogram {
        let n = prepared.n;
        // Active-slot linkage matrix, updated with Lance–Williams for
        // average linkage: d(a∪b, c) = (|a| d(a,c) + |b| d(b,c)) / |a∪b|.
        let mut linkage = prepared.matrix.clone();
        let mut size = vec![1usize; n];
        let mut node = (0..n).collect::<Vec<usize>>();
        let mut min_leaf = (0..n).collect::<Vec<usize>>();
        let mut active = vec![true; n];
        let mut merges = Vec::with_capacity(n.saturating_sub(1));
        for step in 0..n.saturating_sub(1) {
            // The closest active pair; ties toward the name-earliest pair
            // (keyed by the earliest leaves the two clusters contain).
            type PairKey = (f64, usize, usize);
            let mut best: Option<(PairKey, (usize, usize))> = None;
            for i in 0..n {
                if !active[i] {
                    continue;
                }
                for j in (i + 1)..n {
                    if !active[j] {
                        continue;
                    }
                    let d = linkage[i * n + j];
                    let key = (
                        d,
                        min_leaf[i].min(min_leaf[j]),
                        min_leaf[i].max(min_leaf[j]),
                    );
                    if best.as_ref().is_none_or(|(bk, _)| key < *bk) {
                        best = Some((key, (i, j)));
                    }
                }
            }
            let (_, (i, j)) = best.expect("at least one active pair remains");
            let d = linkage[i * n + j];
            merges.push(Merge {
                a: node[i],
                b: node[j],
                distance: d,
            });
            // Fuse j into i.
            let total = (size[i] + size[j]) as f64;
            for c in 0..n {
                if !active[c] || c == i || c == j {
                    continue;
                }
                let fused = (size[i] as f64 * linkage[i * n + c]
                    + size[j] as f64 * linkage[j * n + c])
                    / total;
                linkage[i * n + c] = fused;
                linkage[c * n + i] = fused;
            }
            size[i] += size[j];
            min_leaf[i] = min_leaf[i].min(min_leaf[j]);
            node[i] = n + step;
            active[j] = false;
        }
        Dendrogram {
            n,
            order: prepared.order.clone(),
            merges,
        }
    }

    /// Cuts a prepared dendrogram at `k` and derives per-cluster medoids.
    fn cut_prepared(
        prepared: &Prepared,
        dendrogram: &Dendrogram,
        k: usize,
    ) -> Result<Clusters, SelectError> {
        Ok(prepared.finish(dendrogram.cut_sorted(k)?))
    }
}

impl ClusterAlgorithm for Agglomerative {
    fn name(&self) -> String {
        "agglomerative-avg".to_string()
    }

    fn cluster(
        &self,
        points: &[FeaturePoint],
        distance: &Distance,
        k: usize,
    ) -> Result<Clusters, SelectError> {
        let prepared = Prepared::build(points, distance)?;
        let dendrogram = Agglomerative::dendrogram_from(&prepared);
        Agglomerative::cut_prepared(&prepared, &dendrogram, k)
    }

    fn cluster_many(
        &self,
        points: &[FeaturePoint],
        distance: &Distance,
        ks: &[usize],
    ) -> Result<Vec<Clusters>, SelectError> {
        // The merge tree is k-independent: build it once, cut per k.
        let prepared = Prepared::build(points, distance)?;
        let dendrogram = Agglomerative::dendrogram_from(&prepared);
        ks.iter()
            .map(|&k| Agglomerative::cut_prepared(&prepared, &dendrogram, k))
            .collect()
    }
}

/// Mean silhouette coefficient of a clustering: `(b − a) / max(a, b)`
/// per point, where `a` is the mean distance to the point's own cluster
/// and `b` the smallest mean distance to another cluster. Always in
/// `[-1, 1]`; singleton clusters contribute 0, and a single-cluster
/// partition scores 0 by convention (as does degenerate input a
/// clustering could never have produced — duplicate names, ragged or
/// non-finite features).
pub fn silhouette(points: &[FeaturePoint], distance: &Distance, clusters: &Clusters) -> f64 {
    match Prepared::build(points, distance) {
        Ok(prepared) => silhouette_prepared(&prepared, clusters),
        Err(_) => 0.0,
    }
}

/// [`silhouette`] over an already-built preparation: all distances come
/// from the matrix, so an auto-`k` sweep pays for pairwise distances
/// once, not once per candidate `k`.
fn silhouette_prepared(prepared: &Prepared, clusters: &Clusters) -> f64 {
    let n = prepared.n;
    if clusters.k < 2 || n < 2 {
        return 0.0;
    }
    // Inverse of `order`: sorted-view index of each input point.
    let mut sorted_of = vec![0usize; n];
    for (s, &input) in prepared.order.iter().enumerate() {
        sorted_of[input] = s;
    }
    let mut total = 0.0;
    for i in 0..n {
        let own = clusters.assignments[i];
        if clusters.members[own].len() < 2 {
            continue; // singleton: s = 0 contribution
        }
        let si = sorted_of[i];
        let mean_to = |cluster: &[usize], exclude: Option<usize>| -> f64 {
            let mut sum = 0.0;
            let mut count = 0usize;
            for &m in cluster {
                if Some(m) == exclude {
                    continue;
                }
                sum += prepared.dist(si, sorted_of[m]);
                count += 1;
            }
            sum / count.max(1) as f64
        };
        let a = mean_to(&clusters.members[own], Some(i));
        let b = (0..clusters.k)
            .filter(|&c| c != own)
            .map(|c| mean_to(&clusters.members[c], None))
            .fold(f64::MAX, f64::min);
        let denom = a.max(b);
        if denom > 0.0 {
            total += (b - a) / denom;
        }
    }
    total / n as f64
}

/// BIC-style score of a clustering (lower is better): an x-means-like
/// spherical-Gaussian approximation where the per-cluster variance comes
/// from medoid distances. Not a calibrated Bayesian quantity — a
/// monotone model-complexity trade-off for picking `k`.
pub fn bic(points: &[FeaturePoint], distance: &Distance, clusters: &Clusters) -> f64 {
    let n = points.len() as f64;
    let d = points.first().map_or(1, |p| p.features.len()) as f64;
    let k = clusters.k as f64;
    let mut squared = 0.0;
    for (i, point) in points.iter().enumerate() {
        let medoid = clusters.medoids[clusters.assignments[i]];
        let dist = distance.between(&point.features, &points[medoid].features);
        squared += dist * dist;
    }
    let variance = (squared / (n - k).max(1.0)).max(1e-12);
    let mut log_likelihood = -n * (2.0 * std::f64::consts::PI * variance).ln() * d / 2.0
        - (n - k) * d / 2.0
        - n * n.ln();
    for members in &clusters.members {
        let nc = members.len() as f64;
        log_likelihood += nc * nc.ln();
    }
    let parameters = k * (d + 1.0);
    parameters * n.ln() - 2.0 * log_likelihood
}

/// How `k` is chosen.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum KSelection {
    /// Use exactly this many clusters (capped by the subset-size budget).
    Fixed(usize),
    /// Maximize the mean silhouette over `2 ..= max_k` (`max_k = 0`
    /// means "up to the subset-size budget"); ties prefer fewer
    /// clusters.
    Silhouette {
        /// Largest `k` to consider (0 = derive from the budget).
        max_k: usize,
    },
    /// Minimize the [BIC-style score](bic) over `1 ..= max_k` (`max_k =
    /// 0` as above); ties prefer fewer clusters.
    Bic {
        /// Largest `k` to consider (0 = derive from the budget).
        max_k: usize,
    },
}

/// Runs the algorithm for the `k` the selection policy picks (never more
/// than `cap`), returning the winning clustering and its silhouette.
///
/// # Errors
///
/// Propagates clustering errors; `cap == 0` is a configuration error.
pub fn choose_k(
    algorithm: &dyn ClusterAlgorithm,
    points: &[FeaturePoint],
    distance: &Distance,
    selection: &KSelection,
    cap: usize,
) -> Result<(Clusters, f64), SelectError> {
    if cap == 0 {
        return Err(SelectError::config("subset budget allows zero clusters"));
    }
    let n = points.len();
    let cap = cap.min(n);
    // One shared preparation scores every candidate clustering; the
    // algorithms additionally share their own `k`-independent work
    // (distance matrix, merge tree) through `cluster_many`.
    let prepared = Prepared::build(points, distance)?;
    let run = |k: usize| -> Result<(Clusters, f64), SelectError> {
        let clusters = algorithm.cluster(points, distance, k)?;
        let score = silhouette_prepared(&prepared, &clusters);
        Ok((clusters, score))
    };
    let sweep = |ks: std::ops::RangeInclusive<usize>| -> Result<Vec<(Clusters, f64)>, SelectError> {
        let ks: Vec<usize> = ks.collect();
        Ok(algorithm
            .cluster_many(points, distance, &ks)?
            .into_iter()
            .map(|clusters| {
                let score = silhouette_prepared(&prepared, &clusters);
                (clusters, score)
            })
            .collect())
    };
    match *selection {
        KSelection::Fixed(k) => {
            if k == 0 {
                return Err(SelectError::config("fixed k must be at least 1"));
            }
            run(k.min(cap))
        }
        KSelection::Silhouette { max_k } => {
            let hi = if max_k == 0 { cap } else { max_k.min(cap) };
            if hi < 2 {
                return run(hi.max(1));
            }
            let mut best: Option<(Clusters, f64)> = None;
            for (clusters, score) in sweep(2..=hi)? {
                if best.as_ref().is_none_or(|(_, s)| score > *s) {
                    best = Some((clusters, score));
                }
            }
            Ok(best.expect("2..=hi is non-empty"))
        }
        KSelection::Bic { max_k } => {
            let hi = if max_k == 0 { cap } else { max_k.min(cap) };
            let mut best: Option<(Clusters, f64, f64)> = None;
            for (clusters, score) in sweep(1..=hi)? {
                let b = bic(points, distance, &clusters);
                if best.as_ref().is_none_or(|(_, _, bb)| b < *bb) {
                    best = Some((clusters, score, b));
                }
            }
            let (clusters, score, _) = best.expect("1..=hi is non-empty");
            Ok((clusters, score))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<FeaturePoint> {
        vec![
            FeaturePoint::new("a1", vec![0.0, 0.0]),
            FeaturePoint::new("a2", vec![0.05, 0.0]),
            FeaturePoint::new("a3", vec![0.0, 0.05]),
            FeaturePoint::new("b1", vec![1.0, 1.0]),
            FeaturePoint::new("b2", vec![0.95, 1.0]),
            FeaturePoint::new("c1", vec![0.0, 1.0]),
        ]
    }

    #[test]
    fn kmedoids_recovers_blobs() {
        let points = blobs();
        let clusters = KMedoids::new()
            .cluster(&points, &Distance::Euclidean, 3)
            .unwrap();
        assert_eq!(clusters.k, 3);
        assert_eq!(clusters.assignments[0], clusters.assignments[1]);
        assert_eq!(clusters.assignments[0], clusters.assignments[2]);
        assert_eq!(clusters.assignments[3], clusters.assignments[4]);
        assert_ne!(clusters.assignments[0], clusters.assignments[3]);
        assert_ne!(clusters.assignments[0], clusters.assignments[5]);
        // Medoids are members of their own clusters.
        for (c, &medoid) in clusters.medoids.iter().enumerate() {
            assert!(clusters.members[c].contains(&medoid));
        }
    }

    #[test]
    fn agglomerative_matches_on_blobs_and_cut_is_nested() {
        let points = blobs();
        let agglomerative = Agglomerative::new();
        let clusters = agglomerative
            .cluster(&points, &Distance::Euclidean, 3)
            .unwrap();
        assert_eq!(clusters.k, 3);
        assert_eq!(clusters.assignments[0], clusters.assignments[1]);
        assert_eq!(clusters.assignments[3], clusters.assignments[4]);
        // Cuts are nested: the k=2 partition merges two of the k=3 groups.
        let dendrogram = agglomerative
            .dendrogram(&points, &Distance::Euclidean)
            .unwrap();
        let at3 = dendrogram.cut(3).unwrap();
        let at2 = dendrogram.cut(2).unwrap();
        assert_eq!(at3.len(), 3);
        assert_eq!(at2.len(), 2);
        for fine in &at3 {
            assert!(
                at2.iter()
                    .any(|coarse| fine.iter().all(|m| coarse.contains(m))),
                "k=3 group {fine:?} split across the k=2 partition {at2:?}"
            );
        }
        assert!(dendrogram.cut(0).is_err());
        assert!(dendrogram.cut(7).is_err());
    }

    #[test]
    fn silhouette_prefers_the_true_k() {
        let points = blobs();
        let algorithm = KMedoids::new();
        let (clusters, score) = choose_k(
            &algorithm,
            &points,
            &Distance::Euclidean,
            &KSelection::Silhouette { max_k: 5 },
            5,
        )
        .unwrap();
        assert_eq!(clusters.k, 3, "three well-separated blobs");
        assert!(score > 0.5, "clean separation scores high: {score}");
    }

    #[test]
    fn bic_selection_stays_reasonable() {
        let points = blobs();
        let algorithm = KMedoids::new();
        let (clusters, _) = choose_k(
            &algorithm,
            &points,
            &Distance::Euclidean,
            &KSelection::Bic { max_k: 5 },
            5,
        )
        .unwrap();
        assert!((2..=4).contains(&clusters.k), "picked k = {}", clusters.k);
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let points = blobs();
        assert!(KMedoids::new()
            .cluster(&points, &Distance::Euclidean, 0)
            .is_err());
        assert!(KMedoids::new()
            .cluster(&points, &Distance::Euclidean, 7)
            .is_err());
        assert!(KMedoids::new()
            .cluster(&[], &Distance::Euclidean, 1)
            .is_err());
        let duplicate = vec![
            FeaturePoint::new("x", vec![0.0]),
            FeaturePoint::new("x", vec![1.0]),
        ];
        assert!(KMedoids::new()
            .cluster(&duplicate, &Distance::Euclidean, 1)
            .is_err());
        let ragged = vec![
            FeaturePoint::new("x", vec![0.0]),
            FeaturePoint::new("y", vec![1.0, 2.0]),
        ];
        assert!(Agglomerative::new()
            .cluster(&ragged, &Distance::Euclidean, 1)
            .is_err());
    }

    #[test]
    fn duplicate_feature_vectors_still_yield_nonempty_clusters() {
        let points = vec![
            FeaturePoint::new("p1", vec![0.5, 0.5]),
            FeaturePoint::new("p2", vec![0.5, 0.5]),
            FeaturePoint::new("p3", vec![0.5, 0.5]),
        ];
        for k in 1..=3 {
            let clusters = KMedoids::new()
                .cluster(&points, &Distance::Euclidean, k)
                .unwrap();
            assert_eq!(clusters.k, k);
            assert!(clusters.members.iter().all(|m| !m.is_empty()));
        }
    }
}
