//! Error type for the selection subsystem.

use std::fmt;

use mim_runner::EvalError;

/// Anything that can go wrong while characterizing, clustering, or
/// running a subset sweep.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectError {
    /// The request itself is malformed (empty suite, bad `k`, mismatched
    /// weight vector, ...).
    Config(String),
    /// A workload faulted while being recorded, profiled, or evaluated.
    Eval(EvalError),
}

impl SelectError {
    /// Creates a configuration error.
    pub fn config(message: impl Into<String>) -> SelectError {
        SelectError::Config(message.into())
    }
}

impl fmt::Display for SelectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectError::Config(message) => write!(f, "selection configuration error: {message}"),
            SelectError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SelectError {}

impl From<EvalError> for SelectError {
    fn from(e: EvalError) -> SelectError {
        SelectError::Eval(e)
    }
}

impl From<mim_explore::ExploreError> for SelectError {
    fn from(e: mim_explore::ExploreError) -> SelectError {
        match e {
            mim_explore::ExploreError::Config(message) => SelectError::Config(message),
            mim_explore::ExploreError::Eval(inner) => SelectError::Eval(inner),
            other => SelectError::Config(other.to_string()),
        }
    }
}
