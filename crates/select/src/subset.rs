//! The subset sweep: run a design-space study on the representative
//! subset and extrapolate suite-wide metrics with quantified error.

use std::time::Instant;

use mim_core::DesignSpace;
use mim_explore::{kendall_tau, pruned_indices, Exploration, Frontier, FrontierPoint, Objective};
use mim_runner::{parallel_map, EvalKind, Experiment, WorkloadSpec, WorkloadStore};
use mim_workloads::WorkloadSize;
use serde::{Deserialize, Serialize};

use crate::error::SelectError;
use crate::representative::{RepresentativeSet, Selection};
use crate::signature::Signature;

/// Wall-clock breakdown of a subset run. Not serialized (reports must be
/// byte-deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SubsetTiming {
    /// Worker threads used.
    pub threads: usize,
    /// Wall seconds spent extracting signatures.
    pub signature_seconds: f64,
    /// Wall seconds spent on subset-side work: the representative sweep
    /// plus (when the frontier phase is on) the weighted exploration.
    pub subset_seconds: f64,
    /// Wall seconds spent on exhaustive-side work: the verification
    /// sweep plus the exhaustive frontier exploration (0 when
    /// verification is off).
    pub verify_seconds: f64,
    /// Wall seconds spent sim-probing the error bound.
    pub probe_seconds: f64,
    /// End-to-end wall seconds.
    pub total_seconds: f64,
}

/// Exhaustive-reference verification of the extrapolation: the same
/// sweep run on the whole suite, and how faithfully the weighted subset
/// reproduced it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsetVerify {
    /// Exhaustive (uniform-mean) CPI per design point.
    pub exhaustive_cpi: Vec<f64>,
    /// Kendall rank correlation between the weighted-subset and
    /// exhaustive CPI orderings of the design points.
    pub rank_tau: f64,
    /// Mean |weighted − exhaustive| / exhaustive across design points,
    /// percent.
    pub mean_error_percent: f64,
    /// Worst-case extrapolation error across design points, percent.
    pub max_error_percent: f64,
}

/// Pareto frontiers under (delay, energy), weighted-subset vs exhaustive.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SubsetFrontier {
    /// Objective names, in score order.
    pub objectives: Vec<String>,
    /// Dominance slack granted to extrapolation error when extracting
    /// the subset's contender set (same role as the hybrid workflow's
    /// pruning margin): a point is only dropped when something beats it
    /// by more than this relative margin in every objective.
    pub margin: f64,
    /// The margin-relaxed frontier-contender set the weighted
    /// representative subset finds (the exact frontier when `margin`
    /// is 0).
    pub subset: Frontier,
    /// The exhaustive-suite exact frontier (verification runs only).
    pub exhaustive: Option<Frontier>,
    /// Fraction of the exhaustive frontier present in the subset's
    /// contender set.
    pub recall: Option<f64>,
}

/// Detailed-simulation spot check of the extrapolation error: at a few
/// probe design points, the full suite and the weighted subset are both
/// scored by the cycle-accurate simulator — a model-independent bound on
/// what the subset economy costs in accuracy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimProbe {
    /// Machine ids of the probed design points.
    pub machines: Vec<String>,
    /// Weighted-subset simulated CPI per probe point.
    pub weighted_cpi: Vec<f64>,
    /// Exhaustive-mean simulated CPI per probe point.
    pub exhaustive_cpi: Vec<f64>,
    /// |weighted − exhaustive| / exhaustive per probe point, percent.
    pub error_percent: Vec<f64>,
    /// The sim-verified error bound: the worst probe error, percent.
    pub bound_percent: f64,
}

/// The outcome of a [`SubsetRun`]: the signatures, the selected
/// representatives, the subset sweep's weighted-extrapolated metrics,
/// and (when enabled) the exhaustive verification and sim-probed error
/// bound. Serialization is byte-deterministic for any thread count.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SubsetReport {
    /// Report title.
    pub title: String,
    /// Evaluator family used for the sweeps.
    pub evaluator: String,
    /// Workload size label.
    pub size: String,
    /// Instruction budget per evaluation, if truncated.
    pub limit: Option<u64>,
    /// Full-suite workload names, in input order.
    pub workloads: Vec<String>,
    /// Names of the normalized signature features.
    pub feature_names: Vec<String>,
    /// Per-workload signatures, in input order.
    pub signatures: Vec<Signature>,
    /// The selected representative subset.
    pub selection: RepresentativeSet,
    /// `k / n` — how much of the suite the subset runs.
    pub subset_fraction: f64,
    /// Machine ids, one per design point.
    pub machines: Vec<String>,
    /// Weighted-extrapolated CPI per design point (the subset's stand-in
    /// for the suite mean).
    pub weighted_cpi: Vec<f64>,
    /// Exhaustive verification, when enabled.
    pub verify: Option<SubsetVerify>,
    /// (delay, energy) frontier comparison, when enabled.
    pub frontier: Option<SubsetFrontier>,
    /// Sim-probed error bound, when enabled.
    pub sim_probe: Option<SimProbe>,
    /// Wall-clock breakdown (not serialized).
    #[serde(skip)]
    pub timing: SubsetTiming,
}

impl SubsetReport {
    /// Serializes the report as pretty JSON (deterministic bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error on malformed input.
    pub fn from_json(text: &str) -> Result<SubsetReport, serde_json::Error> {
        serde_json::from_str(text)
    }

    /// Measured cost ratio of the exhaustive sweep over the subset sweep
    /// (1.0 when verification never ran) — the headline economy of
    /// representative selection.
    pub fn sweep_speedup(&self) -> f64 {
        if self.timing.verify_seconds <= 0.0 || self.timing.subset_seconds <= 0.0 {
            return 1.0;
        }
        self.timing.verify_seconds / self.timing.subset_seconds
    }
}

/// Declarative builder for a representative-subset design-space sweep:
/// characterize every workload, cluster, select weighted medoids, sweep
/// the design space on the medoids only, and quantify what the economy
/// costs.
///
/// # Example
///
/// ```no_run
/// use mim_core::DesignSpace;
/// use mim_select::SubsetRun;
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let report = SubsetRun::new(DesignSpace::paper_table2())
///     .workloads(mibench::all())
///     .size(WorkloadSize::Small)
///     .verify(true)      // also run the exhaustive reference
///     .sim_probes(2)     // sim-verify the error bound at 2 points
///     .run()
///     .expect("subset run");
/// let verify = report.verify.as_ref().expect("verification enabled");
/// println!(
///     "{} of {} workloads reproduce the suite ranking at tau = {:.3}",
///     report.selection.k,
///     report.workloads.len(),
///     verify.rank_tau,
/// );
/// ```
pub struct SubsetRun {
    title: String,
    space: DesignSpace,
    workloads: Vec<WorkloadSpec>,
    size: WorkloadSize,
    limit: Option<u64>,
    selection: Selection,
    kind: EvalKind,
    verify: bool,
    frontier: bool,
    frontier_margin: f64,
    sim_probes: usize,
    threads: usize,
    cache: WorkloadStore,
}

impl SubsetRun {
    /// Creates a subset run over `space` with the default
    /// [`Selection`] policy and the mechanistic-model evaluator.
    pub fn new(space: DesignSpace) -> SubsetRun {
        SubsetRun {
            title: String::new(),
            space,
            workloads: Vec::new(),
            size: WorkloadSize::Small,
            limit: None,
            selection: Selection::default(),
            kind: EvalKind::Model,
            verify: false,
            frontier: true,
            frontier_margin: 0.02,
            sim_probes: 0,
            threads: 0,
            cache: WorkloadStore::new(),
        }
    }

    /// Sets the report title.
    pub fn title(mut self, title: impl Into<String>) -> SubsetRun {
        self.title = title.into();
        self
    }

    /// Adds workloads (the full suite to select from).
    pub fn workloads<I, W>(mut self, workloads: I) -> SubsetRun
    where
        I: IntoIterator<Item = W>,
        W: Into<WorkloadSpec>,
    {
        self.workloads.extend(workloads.into_iter().map(Into::into));
        self
    }

    /// Adds one workload.
    pub fn workload(mut self, workload: impl Into<WorkloadSpec>) -> SubsetRun {
        self.workloads.push(workload.into());
        self
    }

    /// Sets the workload size (default [`WorkloadSize::Small`]).
    pub fn size(mut self, size: WorkloadSize) -> SubsetRun {
        self.size = size;
        self
    }

    /// Truncates every recording/profile/simulation to `limit` retired
    /// instructions.
    pub fn limit(mut self, limit: u64) -> SubsetRun {
        self.limit = Some(limit);
        self
    }

    /// Replaces the selection policy (distance, clustering method, `k`
    /// policy, subset-size cap).
    pub fn selection(mut self, selection: Selection) -> SubsetRun {
        self.selection = selection;
        self
    }

    /// Selects the evaluator family for the sweeps (default
    /// [`EvalKind::Model`]).
    pub fn evaluator(mut self, kind: EvalKind) -> SubsetRun {
        self.kind = kind;
        self
    }

    /// Also runs the exhaustive suite over the space and reports rank
    /// fidelity, extrapolation error, and frontier recall (default off —
    /// it costs exactly what the subset economy saves).
    pub fn verify(mut self, verify: bool) -> SubsetRun {
        self.verify = verify;
        self
    }

    /// Toggles the (delay, energy) frontier comparison (default on).
    pub fn frontier(mut self, frontier: bool) -> SubsetRun {
        self.frontier = frontier;
        self
    }

    /// Dominance slack granted to extrapolation error when extracting
    /// the subset's frontier-contender set (default 2%, matching the
    /// hybrid workflow's pruning margin). Set to 0 for the exact subset
    /// frontier — but expect near-tied exhaustive frontier points to
    /// drop out, since the weighted scores carry the (quantified,
    /// typically sub-percent) extrapolation error.
    pub fn frontier_margin(mut self, margin: f64) -> SubsetRun {
        self.frontier_margin = margin.max(0.0);
        self
    }

    /// Sim-verifies the extrapolation error at `probes` design points
    /// spread across the space (default 0 = off).
    pub fn sim_probes(mut self, probes: usize) -> SubsetRun {
        self.sim_probes = probes;
        self
    }

    /// Number of worker threads; `0` (the default) uses all cores. Any
    /// value produces byte-identical reports.
    pub fn threads(mut self, threads: usize) -> SubsetRun {
        self.threads = threads;
        self
    }

    /// The run's shared workload store.
    pub fn profile_cache(&self) -> WorkloadStore {
        self.cache.clone()
    }

    /// Replaces the workload store with a shared one, so signatures,
    /// sweeps, and probes reuse recordings across runs.
    pub fn with_cache(mut self, cache: WorkloadStore) -> SubsetRun {
        self.cache = cache;
        self
    }

    /// Per-design-point CPI table for one experiment label: map each
    /// row's `(workload, machine_index)` to CPI.
    fn cpi_table(
        report: &mim_runner::ExperimentReport,
        label: &str,
        points: usize,
    ) -> std::collections::HashMap<(String, usize), f64> {
        let mut table = std::collections::HashMap::with_capacity(points);
        for row in report.rows_for(label) {
            table.insert((row.workload.clone(), row.machine_index), row.cpi);
        }
        table
    }

    /// Runs the full workflow.
    ///
    /// # Errors
    ///
    /// Returns a [`SelectError`] for a misconfigured run or a failed
    /// evaluation.
    pub fn run(self) -> Result<SubsetReport, SelectError> {
        let t_start = Instant::now();
        if self.workloads.is_empty() {
            return Err(SelectError::config("no workloads configured"));
        }
        if self.space.is_empty() {
            return Err(SelectError::config("design space has no points"));
        }
        let mut seen = std::collections::HashSet::new();
        for spec in &self.workloads {
            if !seen.insert(spec.name().to_string()) {
                return Err(SelectError::config(format!(
                    "duplicate workload name `{}`",
                    spec.name()
                )));
            }
        }
        let threads = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };

        // Phase 1 — characterize: one signature per workload, off the
        // store's single recording per workload.
        let t_signatures = Instant::now();
        let outcomes: Vec<Result<Signature, SelectError>> =
            parallel_map(threads, &self.workloads, |_, spec| {
                Signature::extract(&self.cache, spec, self.size, self.limit)
            });
        let mut signatures = Vec::with_capacity(outcomes.len());
        for outcome in outcomes {
            signatures.push(outcome?);
        }
        let signature_seconds = t_signatures.elapsed().as_secs_f64();

        // Phase 2 — cluster and select the weighted medoids.
        let selection = RepresentativeSet::select(&signatures, &self.selection)?;
        let spec_of = |name: &str| -> WorkloadSpec {
            self.workloads
                .iter()
                .find(|w| w.name() == name)
                .expect("representatives come from the suite")
                .clone()
        };
        let rep_specs: Vec<WorkloadSpec> =
            selection.names().iter().map(|name| spec_of(name)).collect();
        let label = self.kind.label().to_string();
        let points = self.space.len();

        // Phase 3 — the subset sweep: representatives only, full space.
        let t_subset = Instant::now();
        let mut subset_experiment = Experiment::new()
            .title("representative subset sweep")
            .workloads(rep_specs.iter().cloned())
            .size(self.size)
            .design_space(self.space.clone())
            .evaluators([self.kind])
            .threads(threads)
            .with_cache(self.cache.clone());
        if let Some(limit) = self.limit {
            subset_experiment = subset_experiment.limit(limit);
        }
        let subset_report = subset_experiment.run()?;
        let subset_table = SubsetRun::cpi_table(&subset_report, &label, points);
        let weighted_cpi: Vec<f64> = (0..points)
            .map(|point| selection.weighted_mean(|name| subset_table[&(name.to_string(), point)]))
            .collect();
        // Subset-side and exhaustive-side costs accumulate separately
        // (the frontier phase below runs one exploration on each side),
        // so `sweep_speedup` compares genuinely comparable work.
        let mut subset_seconds = t_subset.elapsed().as_secs_f64();
        let mut verify_seconds = 0.0;

        // Phase 4 (optional) — exhaustive verification sweep.
        let verify = if self.verify {
            let t_verify = Instant::now();
            let mut exhaustive_experiment = Experiment::new()
                .title("exhaustive reference sweep")
                .workloads(self.workloads.iter().cloned())
                .size(self.size)
                .design_space(self.space.clone())
                .evaluators([self.kind])
                .threads(threads)
                .with_cache(self.cache.clone());
            if let Some(limit) = self.limit {
                exhaustive_experiment = exhaustive_experiment.limit(limit);
            }
            let exhaustive_report = exhaustive_experiment.run()?;
            let table = SubsetRun::cpi_table(&exhaustive_report, &label, points);
            let n = self.workloads.len() as f64;
            let exhaustive_cpi: Vec<f64> = (0..points)
                .map(|point| {
                    self.workloads
                        .iter()
                        .map(|w| table[&(w.name().to_string(), point)])
                        .sum::<f64>()
                        / n
                })
                .collect();
            let errors: Vec<f64> = weighted_cpi
                .iter()
                .zip(&exhaustive_cpi)
                .map(|(w, e)| 100.0 * (w - e).abs() / e)
                .collect();
            let verify = Some(SubsetVerify {
                rank_tau: kendall_tau(&weighted_cpi, &exhaustive_cpi),
                mean_error_percent: errors.iter().sum::<f64>() / errors.len().max(1) as f64,
                max_error_percent: errors.iter().cloned().fold(0.0, f64::max),
                exhaustive_cpi,
            });
            verify_seconds += t_verify.elapsed().as_secs_f64();
            verify
        } else {
            None
        };

        // Phase 4b (optional) — (delay, energy) frontiers through the
        // weighted exploration path.
        let frontier = if self.frontier {
            let explore = |specs: &[WorkloadSpec], weights: Option<Vec<f64>>| {
                let mut exploration = Exploration::new(self.space.clone())
                    .workloads(specs.iter().cloned())
                    .size(self.size)
                    .objectives([Objective::delay(), Objective::energy()])
                    .evaluator(self.kind)
                    .threads(threads)
                    .with_cache(self.cache.clone());
                if let Some(weights) = weights {
                    exploration = exploration.workload_weights(weights);
                }
                if let Some(limit) = self.limit {
                    exploration = exploration.limit(limit);
                }
                exploration.run()
            };
            let objectives = vec!["delay".to_string(), "energy".to_string()];
            let t_subset_frontier = Instant::now();
            let subset_exploration = explore(&rep_specs, Some(selection.weights()))?;
            subset_seconds += t_subset_frontier.elapsed().as_secs_f64();
            // Margin-relaxed contender extraction over every evaluated
            // point: the weighted scores carry extrapolation error, so a
            // point only leaves the contender set when something beats
            // it decisively.
            let scores: Vec<Vec<f64>> = subset_exploration
                .evaluated
                .iter()
                .map(|p| p.scores.clone())
                .collect();
            let subset_frontier = Frontier {
                objectives: objectives.clone(),
                points: pruned_indices(&scores, self.frontier_margin)
                    .into_iter()
                    .map(|i| {
                        let point = &subset_exploration.evaluated[i];
                        FrontierPoint {
                            point_index: point.point_index,
                            machine_id: point.machine_id.clone(),
                            scores: point.scores.clone(),
                        }
                    })
                    .collect(),
            };
            let (exhaustive, recall) = if self.verify {
                let t_exhaustive_frontier = Instant::now();
                let exhaustive = explore(&self.workloads, None)?.frontier;
                verify_seconds += t_exhaustive_frontier.elapsed().as_secs_f64();
                let recall = subset_frontier.recall_of(&exhaustive);
                (Some(exhaustive), Some(recall))
            } else {
                (None, None)
            };
            Some(SubsetFrontier {
                objectives,
                margin: self.frontier_margin,
                subset: subset_frontier,
                exhaustive,
                recall,
            })
        } else {
            None
        };

        // Phase 5 (optional) — sim-verified error bound at probe points.
        let t_probe = Instant::now();
        let sim_probe = if self.sim_probes > 0 {
            let probes = self.sim_probes.min(points);
            let indices: Vec<usize> = if probes == 1 {
                vec![points / 2]
            } else {
                let mut indices: Vec<usize> = (0..probes)
                    .map(|j| j * (points - 1) / (probes - 1))
                    .collect();
                indices.dedup();
                indices
            };
            let mut machines = Vec::with_capacity(indices.len());
            let mut probe_weighted = Vec::with_capacity(indices.len());
            let mut probe_exhaustive = Vec::with_capacity(indices.len());
            let mut error_percent = Vec::with_capacity(indices.len());
            for index in indices {
                let point = self
                    .space
                    .point_at(index)
                    .expect("probe index within space");
                let mut probe_experiment = Experiment::new()
                    .title("sim probe")
                    .workloads(self.workloads.iter().cloned())
                    .size(self.size)
                    .machine(point.machine.clone())
                    .evaluators([EvalKind::Sim])
                    .threads(threads)
                    .with_cache(self.cache.clone());
                if let Some(limit) = self.limit {
                    probe_experiment = probe_experiment.limit(limit);
                }
                let probe_report = probe_experiment.run()?;
                let table = SubsetRun::cpi_table(&probe_report, EvalKind::Sim.label(), 1);
                let weighted = selection.weighted_mean(|name| table[&(name.to_string(), 0)]);
                let exhaustive = self
                    .workloads
                    .iter()
                    .map(|w| table[&(w.name().to_string(), 0)])
                    .sum::<f64>()
                    / self.workloads.len() as f64;
                machines.push(point.machine.id());
                probe_weighted.push(weighted);
                probe_exhaustive.push(exhaustive);
                error_percent.push(100.0 * (weighted - exhaustive).abs() / exhaustive);
            }
            Some(SimProbe {
                machines,
                weighted_cpi: probe_weighted,
                exhaustive_cpi: probe_exhaustive,
                bound_percent: error_percent.iter().cloned().fold(0.0, f64::max),
                error_percent,
            })
        } else {
            None
        };
        let probe_seconds = t_probe.elapsed().as_secs_f64();

        let subset_fraction = selection.fraction();
        Ok(SubsetReport {
            title: self.title,
            evaluator: label,
            size: self.size.to_string(),
            limit: self.limit,
            workloads: self
                .workloads
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
            feature_names: Signature::feature_names()
                .iter()
                .map(|s| s.to_string())
                .collect(),
            signatures,
            selection,
            subset_fraction,
            machines: subset_report.machines.clone(),
            weighted_cpi,
            verify,
            frontier,
            sim_probe,
            timing: SubsetTiming {
                threads,
                signature_seconds,
                subset_seconds,
                verify_seconds,
                probe_seconds,
                total_seconds: t_start.elapsed().as_secs_f64(),
            },
        })
    }
}
