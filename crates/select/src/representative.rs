//! Representative-input selection: cluster medoids plus cluster weights.

use serde::{Deserialize, Serialize};

use crate::cluster::{
    choose_k, Agglomerative, ClusterAlgorithm, FeaturePoint, KMedoids, KSelection,
};
use crate::distance::Distance;
use crate::error::SelectError;
use crate::signature::Signature;

/// Which clustering algorithm drives the selection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Method {
    /// Seeded deterministic k-medoids.
    KMedoids {
        /// Initialization seed.
        seed: u64,
    },
    /// Average-linkage agglomerative hierarchical clustering with a
    /// dendrogram cut at the selected `k`.
    Agglomerative,
}

/// The full selection policy: how signatures are compared, clustered,
/// and how many clusters to keep.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Selection {
    /// Distance over normalized feature vectors.
    pub distance: Distance,
    /// Clustering algorithm.
    pub method: Method,
    /// How `k` is chosen.
    pub k: KSelection,
    /// Hard cap on the representative fraction of the suite (the paper's
    /// economy: a subset that isn't much smaller than the suite buys
    /// nothing). `k` never exceeds `floor(max_fraction × n)` (but is
    /// always at least 1), so the selected fraction never exceeds the
    /// budget.
    pub max_fraction: f64,
}

impl Default for Selection {
    /// Euclidean k-medoids with silhouette-selected `k`, capped at 25%
    /// of the suite.
    fn default() -> Selection {
        Selection {
            distance: Distance::Euclidean,
            method: Method::KMedoids { seed: 0x6d69_6d53 },
            k: KSelection::Silhouette { max_k: 0 },
            max_fraction: 0.25,
        }
    }
}

impl Selection {
    fn algorithm(&self) -> Box<dyn ClusterAlgorithm> {
        match self.method {
            Method::KMedoids { seed } => Box::new(KMedoids::new().seed(seed)),
            Method::Agglomerative => Box::new(Agglomerative::new()),
        }
    }
}

/// One selected representative: a cluster medoid, the workloads it
/// stands in for (itself included), and the weight its measurements
/// carry when extrapolating suite-wide metrics.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Representative {
    /// Medoid workload name.
    pub name: String,
    /// Cluster share of the suite (`members.len() / n`); weights across
    /// the set sum to 1.
    pub weight: f64,
    /// Names of every workload in the cluster, sorted.
    pub members: Vec<String>,
}

/// The representative subset of a suite: one medoid per cluster with
/// cluster-share weights, plus the provenance needed to reproduce it.
///
/// # Example
///
/// ```no_run
/// use mim_runner::{WorkloadSpec, WorkloadStore};
/// use mim_select::{RepresentativeSet, Selection, Signature};
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let store = WorkloadStore::new();
/// let signatures: Vec<Signature> = mibench::all()
///     .into_iter()
///     .map(|w| {
///         let spec = WorkloadSpec::from(w);
///         Signature::extract(&store, &spec, WorkloadSize::Tiny, None).unwrap()
///     })
///     .collect();
/// let set = RepresentativeSet::select(&signatures, &Selection::default()).unwrap();
/// assert!(set.len() <= (signatures.len() + 3) / 4, "≤ 25% of the suite");
/// let total: f64 = set.weights().iter().sum();
/// assert!((total - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RepresentativeSet {
    /// Clustering algorithm used (display name).
    pub method: String,
    /// Distance used (display name).
    pub distance: String,
    /// Number of clusters (= number of representatives).
    pub k: usize,
    /// Mean silhouette of the winning clustering.
    pub silhouette: f64,
    /// The representatives, ordered by medoid name.
    pub representatives: Vec<Representative>,
}

impl RepresentativeSet {
    /// Clusters the signatures and selects one weighted medoid per
    /// cluster.
    ///
    /// # Errors
    ///
    /// Returns a [`SelectError`] for an empty suite, duplicate names, a
    /// malformed distance, or an unsatisfiable `k` policy.
    pub fn select(
        signatures: &[Signature],
        selection: &Selection,
    ) -> Result<RepresentativeSet, SelectError> {
        if signatures.is_empty() {
            return Err(SelectError::config("no signatures to select from"));
        }
        if !(0.0..=1.0).contains(&selection.max_fraction) {
            return Err(SelectError::config(format!(
                "max_fraction {} outside [0, 1]",
                selection.max_fraction
            )));
        }
        let n = signatures.len();
        let cap = ((selection.max_fraction * n as f64).floor() as usize).clamp(1, n);
        let points: Vec<FeaturePoint> = signatures
            .iter()
            .map(|s| FeaturePoint::new(s.name.clone(), s.feature_vector()))
            .collect();
        let algorithm = selection.algorithm();
        let (clusters, silhouette) = choose_k(
            algorithm.as_ref(),
            &points,
            &selection.distance,
            &selection.k,
            cap,
        )?;
        let representatives = clusters
            .members
            .iter()
            .zip(&clusters.medoids)
            .map(|(members, &medoid)| Representative {
                name: signatures[medoid].name.clone(),
                weight: members.len() as f64 / n as f64,
                members: members
                    .iter()
                    .map(|&m| signatures[m].name.clone())
                    .collect(),
            })
            .collect();
        Ok(RepresentativeSet {
            method: algorithm.name(),
            distance: selection.distance.name(),
            k: clusters.k,
            silhouette,
            representatives,
        })
    }

    /// Number of representatives.
    pub fn len(&self) -> usize {
        self.representatives.len()
    }

    /// True when no representatives were selected (never, post-`select`).
    pub fn is_empty(&self) -> bool {
        self.representatives.is_empty()
    }

    /// Representative names, in set order.
    pub fn names(&self) -> Vec<&str> {
        self.representatives
            .iter()
            .map(|r| r.name.as_str())
            .collect()
    }

    /// Representative weights, in set order (sum to 1).
    pub fn weights(&self) -> Vec<f64> {
        self.representatives.iter().map(|r| r.weight).collect()
    }

    /// Total workloads represented (the suite size `n`).
    pub fn suite_len(&self) -> usize {
        self.representatives.iter().map(|r| r.members.len()).sum()
    }

    /// The subset's share of the suite, `k / n`.
    pub fn fraction(&self) -> f64 {
        self.len() as f64 / self.suite_len().max(1) as f64
    }

    /// Extrapolates a suite-wide mean from per-representative values:
    /// `Σ weight(r) × value(r)` — the weighted stand-in for the uniform
    /// mean over the whole suite.
    pub fn weighted_mean(&self, mut value: impl FnMut(&str) -> f64) -> f64 {
        self.representatives
            .iter()
            .map(|r| r.weight * value(&r.name))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_signature(name: &str, load: f64, transition: f64) -> Signature {
        Signature {
            name: name.to_string(),
            num_insts: 10_000,
            frac_alu: 1.0 - load,
            frac_mul: 0.0,
            frac_div: 0.0,
            frac_load: load,
            frac_store: 0.0,
            frac_branch: 0.0,
            frac_jump: 0.0,
            branch_taken_rate: 0.5,
            branch_transition_rate: transition,
            footprint_blocks: 64,
            cold_fraction: 0.1,
            reuse_p50: 2.0,
            reuse_p90: 4.0,
            reuse_p99: 6.0,
            mean_dep_distance: 4.0,
            short_dep_fraction: 0.5,
            mlp: 1.0,
        }
    }

    fn suite() -> Vec<Signature> {
        vec![
            synthetic_signature("compute1", 0.05, 0.0),
            synthetic_signature("compute2", 0.06, 0.02),
            synthetic_signature("memory1", 0.45, 0.0),
            synthetic_signature("memory2", 0.44, 0.01),
            synthetic_signature("memory3", 0.46, 0.0),
            synthetic_signature("branchy1", 0.05, 0.9),
            synthetic_signature("branchy2", 0.06, 0.92),
            synthetic_signature("branchy3", 0.04, 0.88),
        ]
    }

    #[test]
    fn selection_groups_alike_workloads_and_weights_sum_to_one() {
        let signatures = suite();
        let set = RepresentativeSet::select(
            &signatures,
            &Selection {
                k: KSelection::Fixed(3),
                max_fraction: 0.5,
                ..Selection::default()
            },
        )
        .unwrap();
        assert_eq!(set.k, 3);
        assert!((set.weights().iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert_eq!(set.suite_len(), signatures.len());
        // Each behavioural family elects exactly one representative.
        let compute = set
            .representatives
            .iter()
            .find(|r| r.members.iter().any(|m| m.starts_with("compute")))
            .expect("a compute cluster");
        assert!(compute.members.iter().all(|m| m.starts_with("compute")));
        assert!((compute.weight - 2.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn max_fraction_caps_the_subset() {
        let signatures = suite();
        let set = RepresentativeSet::select(
            &signatures,
            &Selection {
                k: KSelection::Fixed(6),
                max_fraction: 0.25,
                ..Selection::default()
            },
        )
        .unwrap();
        assert_eq!(set.k, 2, "6 requested, but 25% of 8 caps at 2");
        assert!(set.fraction() <= 0.25 + 1e-12);
    }

    #[test]
    fn weighted_mean_extrapolates() {
        let signatures = suite();
        let set = RepresentativeSet::select(
            &signatures,
            &Selection {
                k: KSelection::Fixed(3),
                max_fraction: 0.5,
                ..Selection::default()
            },
        )
        .unwrap();
        // A constant metric extrapolates to itself.
        assert!((set.weighted_mean(|_| 2.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn agglomerative_method_is_available() {
        let signatures = suite();
        let set = RepresentativeSet::select(
            &signatures,
            &Selection {
                method: Method::Agglomerative,
                k: KSelection::Silhouette { max_k: 4 },
                max_fraction: 0.5,
                ..Selection::default()
            },
        )
        .unwrap();
        assert_eq!(set.method, "agglomerative-avg");
        assert!((2..=4).contains(&set.k));
        assert!((-1.0..=1.0).contains(&set.silhouette));
    }
}
