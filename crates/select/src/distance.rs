//! Pluggable distances over normalized signature feature vectors.

use serde::{Deserialize, Serialize};

use crate::error::SelectError;

/// A distance measure between two normalized feature vectors.
///
/// Every variant is a metric on `[0, 1]^d` (weighted Euclidean included,
/// for non-negative weights), so clustering behaves sanely under all of
/// them.
///
/// # Example
///
/// ```
/// use mim_select::Distance;
///
/// let a = [0.0, 0.0];
/// let b = [3.0, 4.0];
/// assert!((Distance::Euclidean.between(&a, &b) - 5.0).abs() < 1e-12);
/// assert!((Distance::Manhattan.between(&a, &b) - 7.0).abs() < 1e-12);
/// let w = Distance::Weighted(vec![1.0, 0.0]); // ignore the second axis
/// assert!((w.between(&a, &b) - 3.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Distance {
    /// Straight-line (L2) distance.
    Euclidean,
    /// City-block (L1) distance — less dominated by any single feature.
    Manhattan,
    /// Euclidean with per-feature weights (e.g. emphasize memory
    /// behaviour over instruction mix). Missing trailing weights count
    /// as 0; weights must be finite and non-negative.
    Weighted(Vec<f64>),
}

impl Distance {
    /// Display name recorded in reports.
    pub fn name(&self) -> String {
        match self {
            Distance::Euclidean => "euclidean".to_string(),
            Distance::Manhattan => "manhattan".to_string(),
            Distance::Weighted(w) => format!("weighted-{}", w.len()),
        }
    }

    /// The distance between two feature vectors.
    ///
    /// Vectors are compared component-wise up to the shorter length
    /// (signatures from the same extractor always agree on length).
    pub fn between(&self, a: &[f64], b: &[f64]) -> f64 {
        match self {
            Distance::Euclidean => a
                .iter()
                .zip(b)
                .map(|(x, y)| (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
            Distance::Manhattan => a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum(),
            Distance::Weighted(weights) => a
                .iter()
                .zip(b)
                .zip(weights)
                .map(|((x, y), w)| w * (x - y) * (x - y))
                .sum::<f64>()
                .sqrt(),
        }
    }

    /// Validates the variant against a feature-vector length.
    ///
    /// # Errors
    ///
    /// Returns a [`SelectError`] for malformed weights.
    pub(crate) fn validate(&self, features: usize) -> Result<(), SelectError> {
        if let Distance::Weighted(weights) = self {
            if weights.is_empty() || weights.len() > features {
                return Err(SelectError::config(format!(
                    "{} weights for {features} features",
                    weights.len()
                )));
            }
            if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                return Err(SelectError::config(
                    "distance weights must be finite and non-negative",
                ));
            }
            if weights.iter().sum::<f64>() <= 0.0 {
                return Err(SelectError::config("distance weights sum to zero"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metrics_agree_on_identity_and_symmetry() {
        let a = [0.2, 0.7, 0.1];
        let b = [0.9, 0.0, 0.4];
        for d in [
            Distance::Euclidean,
            Distance::Manhattan,
            Distance::Weighted(vec![1.0, 2.0, 0.5]),
        ] {
            assert_eq!(d.between(&a, &a), 0.0);
            assert!((d.between(&a, &b) - d.between(&b, &a)).abs() < 1e-15);
            assert!(d.between(&a, &b) > 0.0);
        }
    }

    #[test]
    fn weighted_validation_rejects_malformed_weights() {
        assert!(Distance::Weighted(vec![]).validate(3).is_err());
        assert!(Distance::Weighted(vec![1.0; 4]).validate(3).is_err());
        assert!(Distance::Weighted(vec![1.0, -1.0]).validate(3).is_err());
        assert!(Distance::Weighted(vec![0.0, 0.0]).validate(3).is_err());
        assert!(Distance::Weighted(vec![1.0, 2.0]).validate(3).is_ok());
        assert!(Distance::Euclidean.validate(0).is_ok());
    }
}
