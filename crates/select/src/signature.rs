//! Microarchitecture-independent workload signatures.
//!
//! Following the Breughe & Eeckhout methodology, a workload is
//! characterized by statistics a profiler can measure **once**, without
//! committing to any machine configuration: instruction-mix fractions,
//! branch direction behaviour, LRU stack-distance (reuse) shape,
//! dependency-distance ILP, and achievable memory-level parallelism.
//! Workloads whose signatures are close behave alike across design
//! points, which is what makes cluster medoids usable as stand-ins for
//! the whole suite.

use mim_cache::{HierarchyConfig, StackDistance};
use mim_core::MAX_DEP_DISTANCE;
use mim_isa::InstClass;
use mim_profile::WorkloadProfile;
use mim_runner::{WorkloadSpec, WorkloadStore};
use mim_trace::TraceSource;
use mim_workloads::WorkloadSize;
use serde::{Deserialize, Serialize};

use crate::error::SelectError;

/// Cache-line granularity used for reuse-distance profiling. A fixed
/// constant (not a machine parameter): the reuse histogram is a property
/// of the address stream, compared like-for-like across workloads.
const LINE_BYTES: u64 = 64;

/// Reorder window used for the canonical MLP estimate. Like
/// [`LINE_BYTES`], a fixed reference — every workload is measured against
/// the same window, so the feature ranks workloads rather than machines.
const MLP_WINDOW: u32 = 128;

/// Log₂ cap used to squash unbounded counts (footprints, reuse
/// distances) into `[0, 1]` features.
const LOG_CAP: f64 = 32.0;

/// A microarchitecture-independent behavioural signature of one workload,
/// extracted from its recorded [`Trace`](mim_trace::Trace) and one-pass
/// [`WorkloadProfile`].
///
/// All rates are fractions in `[0, 1]`; distances are in dynamic
/// instructions; reuse distances are in distinct 64-byte lines. The
/// derived [`feature_vector`](Signature::feature_vector) is deterministic
/// and normalized, ready for any [`Distance`](crate::Distance).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signature {
    /// Workload name (the report key).
    pub name: String,
    /// Dynamic instruction count observed.
    pub num_insts: u64,
    /// Fraction of unit-latency ALU instructions.
    pub frac_alu: f64,
    /// Fraction of multiplies.
    pub frac_mul: f64,
    /// Fraction of divides.
    pub frac_div: f64,
    /// Fraction of loads.
    pub frac_load: f64,
    /// Fraction of stores.
    pub frac_store: f64,
    /// Fraction of conditional branches.
    pub frac_branch: f64,
    /// Fraction of unconditional jumps.
    pub frac_jump: f64,
    /// Fraction of conditional branches whose direction was taken.
    pub branch_taken_rate: f64,
    /// Fraction of branch executions whose direction differed from the
    /// previous execution of the same static branch — the
    /// predictability axis (0 = perfectly repetitive, 0.5 ≈ random).
    pub branch_transition_rate: f64,
    /// Distinct 64-byte lines touched by loads and stores (footprint).
    pub footprint_blocks: u64,
    /// Fraction of data accesses that touched a never-before-seen line.
    pub cold_fraction: f64,
    /// Median reuse distance of data accesses, as `log2(1 + d)` lines.
    pub reuse_p50: f64,
    /// 90th-percentile reuse distance, as `log2(1 + d)` lines.
    pub reuse_p90: f64,
    /// 99th-percentile reuse distance, as `log2(1 + d)` lines.
    pub reuse_p99: f64,
    /// Mean nearest-producer dependency distance across all producer
    /// classes (the scalar ILP proxy: short = serial chains).
    pub mean_dep_distance: f64,
    /// Fraction of recorded dependencies at distance ≤ 3 (consumers that
    /// stall even modest-width in-order pipelines).
    pub short_dep_fraction: f64,
    /// Achievable memory-level parallelism against the canonical
    /// reference hierarchy and a 128-entry window (≥ 1.0).
    pub mlp: f64,
}

impl Signature {
    /// Names of the normalized features, in
    /// [`feature_vector`](Signature::feature_vector) order.
    pub fn feature_names() -> &'static [&'static str] {
        &[
            "frac_alu",
            "frac_mul",
            "frac_div",
            "frac_load",
            "frac_store",
            "frac_branch",
            "frac_jump",
            "branch_taken_rate",
            "branch_transition_rate",
            "footprint_log2",
            "cold_fraction",
            "reuse_p50",
            "reuse_p90",
            "reuse_p99",
            "mean_dep_distance",
            "short_dep_fraction",
            "mlp",
        ]
    }

    /// The deterministic normalized feature vector: every component is
    /// mapped into `[0, 1]` with fixed transforms (fractions pass
    /// through; log-scaled counts divide by a 2³² cap; dependency
    /// distances divide by [`MAX_DEP_DISTANCE`]; MLP maps `1..=8` onto
    /// the unit interval), so vectors are comparable across suites
    /// without data-dependent rescaling.
    pub fn feature_vector(&self) -> Vec<f64> {
        let unit = |v: f64| v.clamp(0.0, 1.0);
        vec![
            unit(self.frac_alu),
            unit(self.frac_mul),
            unit(self.frac_div),
            unit(self.frac_load),
            unit(self.frac_store),
            unit(self.frac_branch),
            unit(self.frac_jump),
            unit(self.branch_taken_rate),
            unit(self.branch_transition_rate),
            unit((1.0 + self.footprint_blocks as f64).log2() / LOG_CAP),
            unit(self.cold_fraction),
            unit(self.reuse_p50 / LOG_CAP),
            unit(self.reuse_p90 / LOG_CAP),
            unit(self.reuse_p99 / LOG_CAP),
            unit(self.mean_dep_distance / MAX_DEP_DISTANCE as f64),
            unit(self.short_dep_fraction),
            unit((self.mlp - 1.0) / 7.0),
        ]
    }

    /// Extracts the signature of one workload through a shared
    /// [`WorkloadStore`]: the store's single recording is replayed for
    /// the branch/reuse streams and the MLP estimate, and the one-pass
    /// profile supplies mix and dependency statistics — no additional
    /// functional execution beyond what any sweep already performs.
    ///
    /// # Errors
    ///
    /// Returns a [`SelectError`] if the workload faults while being
    /// recorded, profiled, or replayed.
    pub fn extract(
        store: &WorkloadStore,
        spec: &WorkloadSpec,
        size: WorkloadSize,
        limit: Option<u64>,
    ) -> Result<Signature, SelectError> {
        let program = store.program(spec, size);
        let trace = store.trace(spec, size, limit)?;
        // The canonical single-candidate profile: mix and dependency
        // histograms are machine-independent, so any candidate list
        // yields the same values for the fields the signature reads.
        let hierarchy = HierarchyConfig::default_hierarchy();
        let profile = store.profile(
            spec,
            size,
            limit,
            &hierarchy,
            std::slice::from_ref(&hierarchy.l2),
            &[mim_core::MachineConfig::default_config().predictor],
        )?;

        // One replay pass: per-PC branch transitions + the reuse stream.
        let mut transitions = 0u64;
        let mut last_direction: std::collections::HashMap<u32, bool> =
            std::collections::HashMap::new();
        let mut reuse = StackDistance::new(LINE_BYTES);
        let mut replay = trace
            .replay(&program)
            .map_err(|e| mim_runner::EvalError::trace(spec.name(), "signature", &e))?;
        replay
            .drive(&mut |ev| {
                if ev.class == InstClass::CondBranch {
                    let taken = ev.taken == Some(true);
                    if let Some(previous) = last_direction.insert(ev.pc, taken) {
                        if previous != taken {
                            transitions += 1;
                        }
                    }
                }
                if let Some(addr) = ev.eff_addr {
                    reuse.access(addr);
                }
            })
            .map_err(|e| mim_runner::EvalError::trace(spec.name(), "signature", &e))?;

        // Second replay: the canonical MLP estimate (needs its own cache
        // state, so it cannot share the pass above).
        let mut replay = trace
            .replay(&program)
            .map_err(|e| mim_runner::EvalError::trace(spec.name(), "signature", &e))?;
        let mlp = mim_profile::estimate_mlp_source(&mut replay, &hierarchy, MLP_WINDOW)
            .map_err(|e| mim_runner::EvalError::trace(spec.name(), "signature", &e))?
            .mlp;

        Ok(Signature::from_parts(
            spec.name(),
            &profile,
            trace.branches(),
            trace.taken_branches(),
            transitions,
            &reuse,
            mlp,
        ))
    }

    /// Assembles a signature from already-collected statistics (the
    /// replay-free core of [`extract`](Signature::extract)).
    pub(crate) fn from_parts(
        name: &str,
        profile: &WorkloadProfile,
        branches: u64,
        taken: u64,
        transitions: u64,
        reuse: &StackDistance,
        mlp: f64,
    ) -> Signature {
        let n = profile.num_insts.max(1) as f64;
        let frac = |count: u64| count as f64 / n;
        let deps_total =
            profile.deps_unit.total() + profile.deps_ll.total() + profile.deps_load.total();
        let short: u64 = (1..=3)
            .map(|d| profile.deps_unit.at(d) + profile.deps_ll.at(d) + profile.deps_load.at(d))
            .sum();
        let mean_dep = if deps_total == 0 {
            0.0
        } else {
            let weighted = profile.deps_unit.mean_distance() * profile.deps_unit.total() as f64
                + profile.deps_ll.mean_distance() * profile.deps_ll.total() as f64
                + profile.deps_load.mean_distance() * profile.deps_load.total() as f64;
            weighted / deps_total as f64
        };
        let accesses = reuse.accesses();
        Signature {
            name: name.to_string(),
            num_insts: profile.num_insts,
            frac_alu: frac(profile.mix.alu),
            frac_mul: frac(profile.mix.mul),
            frac_div: frac(profile.mix.div),
            frac_load: frac(profile.mix.load),
            frac_store: frac(profile.mix.store),
            frac_branch: frac(profile.mix.cond_branch),
            frac_jump: frac(profile.mix.jump),
            branch_taken_rate: ratio(taken, branches),
            branch_transition_rate: ratio(transitions, branches),
            footprint_blocks: reuse.footprint_blocks() as u64,
            cold_fraction: ratio(reuse.cold_misses(), accesses),
            reuse_p50: log_percentile(reuse.histogram(), 50),
            reuse_p90: log_percentile(reuse.histogram(), 90),
            reuse_p99: log_percentile(reuse.histogram(), 99),
            mean_dep_distance: mean_dep,
            short_dep_fraction: ratio(short, deps_total),
            mlp,
        }
    }
}

impl std::fmt::Display for Signature {
    /// One summary line per signature, e.g.
    /// `sha: 21514 insts, mem 23.4%, br 7.8% (taken 61% / flip 12%),
    /// reuse p90 2^3.1 over 142 lines, dep 2.4, mlp 1.00`.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} insts, mem {:.1}%, br {:.1}% (taken {:.0}% / flip {:.0}%), \
             reuse p90 2^{:.1} over {} lines, dep {:.1}, mlp {:.2}",
            self.name,
            self.num_insts,
            100.0 * (self.frac_load + self.frac_store),
            100.0 * self.frac_branch,
            100.0 * self.branch_taken_rate,
            100.0 * self.branch_transition_rate,
            self.reuse_p90,
            self.footprint_blocks,
            self.mean_dep_distance,
            self.mlp,
        )
    }
}

/// `numerator / denominator`, 0.0 when the denominator is zero.
fn ratio(numerator: u64, denominator: u64) -> f64 {
    if denominator == 0 {
        0.0
    } else {
        numerator as f64 / denominator as f64
    }
}

/// The `percent`-th percentile of the reuse-distance histogram (reuse
/// accesses only — cold misses are tracked by `cold_fraction`), returned
/// as `log2(1 + distance)`. 0.0 for an empty histogram.
fn log_percentile(histogram: &[u64], percent: u64) -> f64 {
    let total: u64 = histogram.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Smallest distance d with cumulative count ≥ ceil(percent% of total).
    let target = (total * percent).div_ceil(100).max(1);
    let mut cumulative = 0u64;
    for (distance, &count) in histogram.iter().enumerate() {
        cumulative += count;
        if cumulative >= target {
            return (1.0 + distance as f64).log2();
        }
    }
    (histogram.len() as f64).log2()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_percentile_walks_the_histogram() {
        // 10 accesses at distance 0, 10 at distance 7.
        let mut histogram = vec![0u64; 8];
        histogram[0] = 10;
        histogram[7] = 10;
        assert_eq!(log_percentile(&histogram, 50), 0.0); // log2(1+0)
        assert!((log_percentile(&histogram, 90) - 3.0).abs() < 1e-12); // log2(8)
        assert_eq!(log_percentile(&[], 90), 0.0);
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        assert_eq!(ratio(5, 0), 0.0);
        assert!((ratio(1, 4) - 0.25).abs() < 1e-12);
    }
}
