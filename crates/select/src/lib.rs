//! # mim-select — workload characterization, clustering, and
//! representative-input selection
//!
//! The paper's economy is spending detailed simulation only where it
//! pays. This crate extends that economy to the *workload* axis, in the
//! Breughe/Eeckhout tradition of selecting representative benchmark
//! inputs: most suites contain near-duplicate behaviours, so a design-
//! space study that runs every workload mostly re-measures what it
//! already knows.
//!
//! * [`Signature`] — a microarchitecture-independent characterization of
//!   one workload (instruction-mix fractions, branch taken/transition
//!   rates, reuse-distance percentiles, dependency-distance ILP, MLP),
//!   extracted from the recorded [`Trace`](mim_trace::Trace) and one-pass
//!   [`WorkloadProfile`](mim_profile::WorkloadProfile) every sweep
//!   already produces — characterization adds **zero** extra functional
//!   executions.
//! * [`Distance`] — pluggable metrics (Euclidean / Manhattan / weighted)
//!   over the deterministic normalized feature vector.
//! * [`KMedoids`] / [`Agglomerative`] — deterministic clustering behind
//!   the [`ClusterAlgorithm`] trait: seeded PAM-style k-medoids, and
//!   average-linkage hierarchical clustering with a [`Dendrogram`] cut;
//!   [`KSelection`] picks `k` by silhouette or a BIC-style score.
//! * [`RepresentativeSet`] — one medoid per cluster with cluster-share
//!   weights (summing to 1), the stand-in for the whole suite.
//! * [`SubsetRun`] — the driver: characterize, cluster, sweep the design
//!   space on the representatives only (through
//!   [`Experiment`](mim_runner::Experiment) and the weighted
//!   [`Exploration`](mim_explore::Exploration) path), and report
//!   weighted-extrapolated CPI, rank fidelity, frontier recall, and a
//!   sim-verified error bound ([`SubsetReport`]).
//!
//! ## Example: a 4× cheaper sweep with a quantified error bound
//!
//! ```no_run
//! use mim_core::DesignSpace;
//! use mim_select::SubsetRun;
//! use mim_workloads::{mibench, WorkloadSize};
//!
//! let report = SubsetRun::new(DesignSpace::paper_table2())
//!     .workloads(mibench::all())
//!     .size(WorkloadSize::Small)
//!     .verify(true)   // run the exhaustive reference too (for the study)
//!     .sim_probes(2)  // sim-verify the extrapolation error at 2 points
//!     .run()
//!     .expect("subset run");
//! let verify = report.verify.as_ref().expect("verification enabled");
//! println!(
//!     "{}/{} workloads, rank tau {:.3}, sim-verified error ≤ {:.1}%",
//!     report.selection.k,
//!     report.workloads.len(),
//!     verify.rank_tau,
//!     report.sim_probe.as_ref().expect("probes enabled").bound_percent,
//! );
//! ```
//!
//! Reports serialize to byte-identical JSON for any thread count,
//! matching the `ExperimentReport`/`ExplorationReport` guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cluster;
mod distance;
mod error;
mod representative;
mod signature;
mod subset;

pub use cluster::{
    bic, choose_k, silhouette, Agglomerative, ClusterAlgorithm, Clusters, Dendrogram, FeaturePoint,
    KMedoids, KSelection, Merge,
};
pub use distance::Distance;
pub use error::SelectError;
pub use representative::{Method, Representative, RepresentativeSet, Selection};
pub use signature::Signature;
pub use subset::{SimProbe, SubsetFrontier, SubsetReport, SubsetRun, SubsetTiming, SubsetVerify};
