//! # mim-explore — design-space exploration
//!
//! The paper's one-pass mechanistic model exists to make design-space
//! exploration cheap (§5–6): score hundreds of design points
//! analytically, then spend simulator cycles only where it matters. This
//! crate is that workflow as an API on top of
//! [`mim-runner`](mim_runner):
//!
//! * [`Objective`] — named, minimized figures of merit over an
//!   [`EvalResult`](mim_runner::EvalResult): CPI, delay, energy, EDP,
//!   ED²P, die area, weighted blends, and custom closures.
//! * [`Frontier`] — exact multi-objective Pareto extraction with
//!   deterministic tie-breaking, JSON-serializable.
//! * [`SearchStrategy`] — pluggable search: [`Exhaustive`] (delegates to
//!   [`Experiment`](mim_runner::Experiment)), [`GreedyAscent`] (per-axis
//!   hill climbing with seeded restarts), and [`Anneal`] (seeded,
//!   deterministic simulated annealing with a budget). All strategies
//!   share the exploration's one-pass
//!   [`WorkloadStore`](mim_runner::WorkloadStore), so even a 10,000-point
//!   generated space costs one profiling pass per workload.
//! * [`Exploration`] — the driver. With
//!   [`sim_verify`](Exploration::sim_verify) it runs the paper's headline
//!   **hybrid workflow**: the model scores every candidate,
//!   margin-relaxed dominance prunes the space to frontier contenders,
//!   and only the survivors are re-scored with detailed simulation. The
//!   [`ExplorationReport`] records the sim-verified frontier, the
//!   simulated fraction of the space, and the model-vs-sim rank fidelity.
//!
//! ## Example: hybrid exploration in one declaration
//!
//! ```no_run
//! use mim_core::DesignSpace;
//! use mim_explore::{Exploration, Objective};
//! use mim_workloads::{mibench, WorkloadSize};
//!
//! let report = Exploration::new(DesignSpace::paper_table2())
//!     .workloads(mibench::all())
//!     .size(WorkloadSize::Small)
//!     .objectives([Objective::delay(), Objective::energy()])
//!     .sim_verify(0.02) // prune with 2% slack, simulate survivors only
//!     .threads(0)
//!     .run()
//!     .expect("exploration");
//! let hybrid = report.hybrid.as_ref().expect("hybrid enabled");
//! println!(
//!     "sim-verified frontier: {} points, simulating {:.0}% of the space",
//!     hybrid.frontier.len(),
//!     100.0 * hybrid.sim_fraction,
//! );
//! ```
//!
//! Reports serialize to byte-identical JSON for any thread count,
//! matching the `ExperimentReport` guarantee.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod exploration;
mod objective;
mod pareto;
mod strategy;

pub use error::ExploreError;
pub use exploration::{
    EvaluatedPoint, Exploration, ExplorationReport, ExplorationTiming, HybridPoint, HybridReport,
};
pub use objective::Objective;
pub use pareto::{
    dominates, kendall_tau, margin_dominates, pareto_indices, pruned_indices, Frontier,
    FrontierPoint,
};
pub use strategy::{scalarize, Anneal, Exhaustive, GreedyAscent, SearchSpace, SearchStrategy};
