//! Error type shared by objectives, strategies, and the exploration
//! driver.

use std::error::Error;
use std::fmt;

use mim_runner::EvalError;

/// Error produced while exploring a design space.
#[derive(Debug, Clone, PartialEq)]
pub enum ExploreError {
    /// The exploration was misconfigured (no workloads, no objectives,
    /// an empty space, ...).
    Config(String),
    /// An underlying evaluation failed (program fault while profiling or
    /// simulating).
    Eval(EvalError),
    /// An objective produced an unusable score (non-finite, or a metric
    /// the evaluation did not collect).
    Objective {
        /// Objective that failed.
        objective: String,
        /// Human-readable cause.
        message: String,
    },
}

impl ExploreError {
    /// Creates a configuration error.
    pub fn config(message: impl Into<String>) -> ExploreError {
        ExploreError::Config(message.into())
    }

    /// Creates an objective-scoring error.
    pub fn objective(objective: impl Into<String>, message: impl fmt::Display) -> ExploreError {
        ExploreError::Objective {
            objective: objective.into(),
            message: message.to_string(),
        }
    }
}

impl fmt::Display for ExploreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExploreError::Config(message) => write!(f, "exploration config: {message}"),
            ExploreError::Eval(e) => write!(f, "exploration evaluation: {e}"),
            ExploreError::Objective { objective, message } => {
                write!(f, "objective `{objective}`: {message}")
            }
        }
    }
}

impl Error for ExploreError {}

impl From<EvalError> for ExploreError {
    fn from(e: EvalError) -> ExploreError {
        ExploreError::Eval(e)
    }
}
