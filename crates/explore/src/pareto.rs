//! Exact multi-objective Pareto-frontier extraction with deterministic
//! tie-breaking, plus the margin-relaxed dominance used by the hybrid
//! model→sim workflow.

use serde::{Deserialize, Serialize};

/// True when `a` dominates `b` under minimization: `a` is no worse in
/// every objective and strictly better in at least one.
pub fn dominates(a: &[f64], b: &[f64]) -> bool {
    margin_dominates(a, b, 0.0)
}

/// True when `a` beats `b` by more than `margin` (relative to `b`'s
/// magnitude) in **every** objective, and strictly in at least one.
/// `margin = 0.0` is exact dominance; a positive margin is the slack the
/// hybrid workflow grants an approximate model: a candidate only gets
/// pruned when something beats it decisively enough that model error
/// cannot have flipped the comparison.
pub fn margin_dominates(a: &[f64], b: &[f64], margin: f64) -> bool {
    debug_assert_eq!(a.len(), b.len(), "objective vectors must align");
    let mut strict = false;
    for (&x, &y) in a.iter().zip(b.iter()) {
        if x > y - margin * y.abs() {
            return false;
        }
        if x < y {
            strict = true;
        }
    }
    strict
}

/// Indices of the vectors that survive `margin`-relaxed dominance,
/// ascending. With `margin = 0.0` this is the exact Pareto frontier.
///
/// Deterministic: the scan visits candidates in lexicographic score order
/// (ties broken by index), under which every potential dominator precedes
/// the points it dominates, and the survivors come back sorted by index —
/// the same bytes for any caller thread count.
pub fn pruned_indices(scores: &[Vec<f64>], margin: f64) -> Vec<usize> {
    let mut order: Vec<usize> = (0..scores.len()).collect();
    order.sort_by(|&a, &b| lex_cmp(&scores[a], &scores[b]).then_with(|| a.cmp(&b)));
    let mut survivors: Vec<usize> = Vec::new();
    'candidates: for &i in &order {
        for &s in &survivors {
            if margin_dominates(&scores[s], &scores[i], margin) {
                continue 'candidates;
            }
        }
        survivors.push(i);
    }
    survivors.sort_unstable();
    survivors
}

/// Indices of the exact Pareto frontier (minimization), ascending.
pub fn pareto_indices(scores: &[Vec<f64>]) -> Vec<usize> {
    pruned_indices(scores, 0.0)
}

fn lex_cmp(a: &[f64], b: &[f64]) -> std::cmp::Ordering {
    for (&x, &y) in a.iter().zip(b.iter()) {
        match x.partial_cmp(&y) {
            Some(std::cmp::Ordering::Equal) | None => continue,
            Some(other) => return other,
        }
    }
    std::cmp::Ordering::Equal
}

/// One design point on a frontier: its flat index in the design space,
/// its machine id, and its objective scores (one per objective, in the
/// exploration's objective order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FrontierPoint {
    /// Flat index of the point within its design space.
    pub point_index: usize,
    /// Machine id of the design point.
    pub machine_id: String,
    /// Objective scores, aggregated across the exploration's workloads.
    pub scores: Vec<f64>,
}

/// A Pareto frontier: the mutually non-dominated subset of the evaluated
/// points, sorted by point index (deterministic tie-breaking).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Frontier {
    /// Objective names, in score order.
    pub objectives: Vec<String>,
    /// Non-dominated points, ascending by `point_index`.
    pub points: Vec<FrontierPoint>,
}

impl Frontier {
    /// Extracts the exact frontier from `(point_index, machine_id,
    /// scores)` candidates.
    pub fn from_candidates(
        objectives: Vec<String>,
        candidates: &[(usize, String, Vec<f64>)],
    ) -> Frontier {
        let scores: Vec<Vec<f64>> = candidates.iter().map(|(_, _, s)| s.clone()).collect();
        let points = pareto_indices(&scores)
            .into_iter()
            .map(|i| FrontierPoint {
                point_index: candidates[i].0,
                machine_id: candidates[i].1.clone(),
                scores: candidates[i].2.clone(),
            })
            .collect();
        Frontier { objectives, points }
    }

    /// Number of frontier points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when the frontier is empty (no points were evaluated).
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// True when the frontier contains the design point.
    pub fn contains(&self, point_index: usize) -> bool {
        self.points.iter().any(|p| p.point_index == point_index)
    }

    /// Fraction of `reference`'s points present in `self` — the recall
    /// metric the hybrid workflow reports against the exhaustive
    /// simulation frontier. `1.0` when the reference is empty.
    pub fn recall_of(&self, reference: &Frontier) -> f64 {
        if reference.points.is_empty() {
            return 1.0;
        }
        let hit = reference
            .points
            .iter()
            .filter(|p| self.contains(p.point_index))
            .count();
        hit as f64 / reference.points.len() as f64
    }
}

/// Kendall rank correlation (tau-a) between two paired score sequences —
/// the model-vs-simulation rank-fidelity measure: `1.0` when the model
/// orders every candidate pair exactly as the simulator does, `-1.0` when
/// it inverts every pair.
pub fn kendall_tau(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len(), "paired sequences must align");
    let n = a.len();
    if n < 2 {
        return 1.0;
    }
    let mut concordant = 0i64;
    let mut discordant = 0i64;
    for i in 0..n {
        for j in (i + 1)..n {
            let da = a[i] - a[j];
            let db = b[i] - b[j];
            let product = da * db;
            if product > 0.0 {
                concordant += 1;
            } else if product < 0.0 {
                discordant += 1;
            }
        }
    }
    let pairs = (n * (n - 1) / 2) as f64;
    (concordant - discordant) as f64 / pairs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(dominates(&[1.0, 2.0], &[1.0, 3.0]));
        assert!(dominates(&[0.5, 2.0], &[1.0, 3.0]));
        assert!(!dominates(&[1.0, 2.0], &[1.0, 2.0]), "equal vectors tie");
        assert!(!dominates(&[0.5, 4.0], &[1.0, 3.0]), "trade-off");
    }

    #[test]
    fn margin_requires_a_decisive_win() {
        // 5% better everywhere: dominates at margin 0, not at margin 10%.
        assert!(margin_dominates(&[0.95, 0.95], &[1.0, 1.0], 0.0));
        assert!(!margin_dominates(&[0.95, 0.95], &[1.0, 1.0], 0.10));
        assert!(margin_dominates(&[0.80, 0.80], &[1.0, 1.0], 0.10));
    }

    #[test]
    fn frontier_extraction_keeps_trade_offs_and_ties() {
        // Points: a (1,4), b (2,2), c (4,1) form the frontier; d (3,3) is
        // dominated by b; e duplicates b and is kept (mutually
        // non-dominated).
        let scores = vec![
            vec![1.0, 4.0],
            vec![2.0, 2.0],
            vec![4.0, 1.0],
            vec![3.0, 3.0],
            vec![2.0, 2.0],
        ];
        assert_eq!(pareto_indices(&scores), vec![0, 1, 2, 4]);
    }

    #[test]
    fn wider_margins_keep_more_survivors() {
        let scores = vec![
            vec![1.00, 1.00],
            vec![1.04, 1.04], // within 5% of the frontier point
            vec![2.00, 2.00], // decisively dominated
        ];
        assert_eq!(pruned_indices(&scores, 0.0), vec![0]);
        assert_eq!(pruned_indices(&scores, 0.05), vec![0, 1]);
        assert_eq!(pruned_indices(&scores, 2.0), vec![0, 1, 2]);
    }

    #[test]
    fn recall_counts_reference_points_recovered() {
        let objectives = vec!["a".to_string(), "b".to_string()];
        let full = Frontier::from_candidates(
            objectives.clone(),
            &[
                (0, "m0".into(), vec![1.0, 2.0]),
                (1, "m1".into(), vec![2.0, 1.0]),
            ],
        );
        let half = Frontier::from_candidates(
            objectives,
            &[
                (0, "m0".into(), vec![1.0, 2.0]),
                (2, "m2".into(), vec![3.0, 0.5]),
            ],
        );
        assert_eq!(full.len(), 2);
        assert_eq!(half.len(), 2);
        assert!(full.contains(0) && !full.contains(2));
        // `half` recovers one of `full`'s two points, and vice versa.
        assert!((half.recall_of(&full) - 0.5).abs() < 1e-12);
        assert!((full.recall_of(&half) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn kendall_tau_spans_agreement_to_inversion() {
        let a = [1.0, 2.0, 3.0, 4.0];
        let up = [10.0, 20.0, 30.0, 40.0];
        let down = [40.0, 30.0, 20.0, 10.0];
        assert!((kendall_tau(&a, &up) - 1.0).abs() < 1e-12);
        assert!((kendall_tau(&a, &down) + 1.0).abs() < 1e-12);
        assert_eq!(kendall_tau(&[1.0], &[2.0]), 1.0, "degenerate");
    }
}
