//! Pluggable search strategies over a design space: exhaustive
//! enumeration, per-axis greedy hill climbing, and seeded simulated
//! annealing — all scoring points through one shared, memoized
//! [`SearchSpace`] so a workload is profiled exactly once no matter how
//! a strategy wanders.

use std::collections::BTreeMap;
use std::sync::Mutex;

use mim_core::{DesignPoint, DesignSpace};
use mim_runner::{
    EvalKind, EvalResult, Evaluator, Experiment, ModelEvaluator, OooEvaluator, SampledSimEvaluator,
    SimEvaluator, WorkloadSpec, WorkloadStore,
};
use mim_workloads::WorkloadSize;

use crate::error::ExploreError;
use crate::objective::Objective;

/// The workspace's deterministic random stream: the seed fully
/// determines every strategy decision, which is what makes annealing
/// reports reproducible byte for byte.
pub(crate) use mim_core::SplitMix64;

/// Scores design points: (point × workloads × objectives) → one objective
/// vector per point, aggregated as the weighted arithmetic mean across
/// workloads (`weights` normalized to sum to 1; uniform by default — the
/// representative-subset workflow supplies cluster weights instead).
pub(crate) struct PointScorer {
    pub(crate) space: DesignSpace,
    pub(crate) workloads: Vec<WorkloadSpec>,
    pub(crate) weights: Vec<f64>,
    pub(crate) size: WorkloadSize,
    pub(crate) limit: Option<u64>,
    pub(crate) kind: EvalKind,
    pub(crate) energy: bool,
    pub(crate) cache: WorkloadStore,
    pub(crate) objectives: Vec<Objective>,
    pub(crate) threads: usize,
}

impl PointScorer {
    fn evaluate_cell(
        &self,
        spec: &WorkloadSpec,
        point: &DesignPoint,
    ) -> Result<EvalResult, ExploreError> {
        let result = match self.kind {
            EvalKind::Model => ModelEvaluator::for_point(&self.space, point)
                .with_cache(self.cache.clone())
                .with_limit(self.limit)
                .with_energy(self.energy)
                .evaluate(spec, self.size)?,
            EvalKind::Sim => SimEvaluator::for_point(&self.space, point)
                .with_cache(self.cache.clone())
                .with_limit(self.limit)
                .with_energy(self.energy)
                .evaluate(spec, self.size)?,
            EvalKind::Ooo => OooEvaluator::for_point(&self.space, point)
                .with_cache(self.cache.clone())
                .with_limit(self.limit)
                .with_energy(self.energy)
                .evaluate(spec, self.size)?,
            EvalKind::Sampled => SampledSimEvaluator::for_point(&self.space, point)
                .with_cache(self.cache.clone())
                .with_limit(self.limit)
                .with_energy(self.energy)
                .evaluate(spec, self.size)?,
        };
        Ok(result)
    }

    /// Scores one design point: per-objective weighted mean across the
    /// exploration's workloads.
    pub(crate) fn score_point(&self, index: usize) -> Result<Vec<f64>, ExploreError> {
        let point = self.space.point_at(index).ok_or_else(|| {
            ExploreError::config(format!(
                "point index {index} out of range (space holds {} points)",
                self.space.len()
            ))
        })?;
        let mut sums = vec![0.0; self.objectives.len()];
        for (spec, &weight) in self.workloads.iter().zip(&self.weights) {
            let result = self.evaluate_cell(spec, &point)?;
            for (sum, objective) in sums.iter_mut().zip(&self.objectives) {
                *sum += weight * objective.score(&result, &point.machine)?;
            }
        }
        Ok(sums)
    }
}

/// A strategy's view of the design space: a memoized scoring oracle plus
/// the axis structure needed to take neighborhood steps. Every point a
/// strategy evaluates lands in the exploration's evaluated set — the
/// frontier is extracted from exactly what the search visited.
pub struct SearchSpace<'a> {
    scorer: &'a PointScorer,
    memo: Mutex<BTreeMap<usize, Vec<f64>>>,
}

impl<'a> SearchSpace<'a> {
    pub(crate) fn new(scorer: &'a PointScorer) -> SearchSpace<'a> {
        SearchSpace {
            scorer,
            memo: Mutex::new(BTreeMap::new()),
        }
    }

    /// Number of points in the design space.
    pub fn len(&self) -> usize {
        self.scorer.space.len()
    }

    /// True when the space has no points.
    pub fn is_empty(&self) -> bool {
        self.scorer.space.is_empty()
    }

    /// Candidate counts per axis: `[depth_freq, widths, l2s, predictors]`.
    pub fn axis_lens(&self) -> [usize; 4] {
        self.scorer.space.axis_lens()
    }

    /// Decodes a flat point index into per-axis coordinates.
    pub fn coords_of(&self, index: usize) -> Option<[usize; 4]> {
        self.scorer.space.coords_of(index)
    }

    /// Encodes per-axis coordinates into the flat point index.
    pub fn index_of(&self, coords: [usize; 4]) -> Option<usize> {
        self.scorer.space.index_of(coords)
    }

    /// Number of objectives per score vector.
    pub fn objective_count(&self) -> usize {
        self.scorer.objectives.len()
    }

    /// Number of distinct points evaluated so far (the search budget
    /// currency: memoized re-visits are free).
    pub fn evaluations(&self) -> usize {
        self.memo.lock().expect("memo poisoned").len()
    }

    /// Scores the design point at `index`, memoized: the first visit runs
    /// the evaluator over every workload (reusing the exploration's
    /// one-pass profile cache), later visits are free.
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] for an out-of-range index or a failed
    /// evaluation.
    pub fn evaluate(&self, index: usize) -> Result<Vec<f64>, ExploreError> {
        if let Some(scores) = self.memo.lock().expect("memo poisoned").get(&index) {
            return Ok(scores.clone());
        }
        let scores = self.scorer.score_point(index)?;
        self.memo
            .lock()
            .expect("memo poisoned")
            .insert(index, scores.clone());
        Ok(scores)
    }

    /// Scores every point of the space in one parallel grid — delegates to
    /// [`Experiment`] (sharing the exploration's profile cache and thread
    /// count), which is how [`Exhaustive`] keeps the §2.1 one-pass
    /// invariant.
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] if any cell fails.
    pub fn evaluate_all(&self) -> Result<(), ExploreError> {
        let scorer = self.scorer;
        let mut experiment = Experiment::new()
            .title("exhaustive exploration grid")
            .workloads(scorer.workloads.iter().cloned())
            .size(scorer.size)
            .design_space(scorer.space.clone())
            .evaluators([scorer.kind])
            .energy(scorer.energy)
            .threads(scorer.threads)
            .with_cache(scorer.cache.clone());
        if let Some(limit) = scorer.limit {
            experiment = experiment.limit(limit);
        }
        let report = experiment.run()?;
        // One linear pass over the grid's rows (indexing rows by point
        // keeps a 10,000-point space from going quadratic here).
        let machines: Vec<_> = scorer.space.points().map(|p| p.machine).collect();
        let weight_of: std::collections::HashMap<&str, f64> = scorer
            .workloads
            .iter()
            .zip(&scorer.weights)
            .map(|(spec, &w)| (spec.name(), w))
            .collect();
        let mut sums = vec![vec![0.0; scorer.objectives.len()]; scorer.space.len()];
        for row in &report.rows {
            let machine = &machines[row.machine_index];
            let weight = weight_of[row.workload.as_str()];
            for (sum, objective) in sums[row.machine_index].iter_mut().zip(&scorer.objectives) {
                *sum += weight * objective.score(row, machine)?;
            }
        }
        let mut memo = self.memo.lock().expect("memo poisoned");
        for (index, scores) in sums.into_iter().enumerate() {
            memo.entry(index).or_insert(scores);
        }
        Ok(())
    }

    /// Drains the memo into `(point_index, scores)` pairs, ascending by
    /// index (the deterministic order reports are built in).
    pub(crate) fn into_evaluated(self) -> Vec<(usize, Vec<f64>)> {
        self.memo
            .into_inner()
            .expect("memo poisoned")
            .into_iter()
            .collect()
    }
}

/// Scalarizes an objective vector for single-track search: the
/// weighted sum of log-scores (equivalently, a weighted geometric mean).
/// Log space makes the combination scale-free — objectives measured in
/// seconds and joules contribute comparably without manual normalization.
/// Scores are clamped to positive, matching the built-in objectives
/// (CPI, delay, energy, EDP, ED²P, area are all positive).
pub fn scalarize(scores: &[f64], weights: &[f64]) -> f64 {
    scores
        .iter()
        .zip(weights)
        .map(|(&s, &w)| w * s.max(f64::MIN_POSITIVE).ln())
        .sum()
}

/// A design-space search strategy: decides **which** points to score.
/// Every point it evaluates joins the exploration's evaluated set, from
/// which the Pareto frontier is extracted — so a strategy's job is to
/// spend its budget near the frontier.
///
/// # Example: a custom strategy
///
/// ```
/// use mim_explore::{ExploreError, SearchSpace, SearchStrategy};
///
/// /// Scores only the first and last point of the space.
/// struct Corners;
///
/// impl SearchStrategy for Corners {
///     fn name(&self) -> String {
///         "corners".into()
///     }
///
///     fn search(&self, space: &SearchSpace) -> Result<(), ExploreError> {
///         space.evaluate(0)?;
///         space.evaluate(space.len() - 1)?;
///         Ok(())
///     }
/// }
/// ```
pub trait SearchStrategy: Send + Sync {
    /// Display name recorded in the exploration report.
    fn name(&self) -> String;

    /// Visits points of the space, evaluating candidates via
    /// [`SearchSpace::evaluate`].
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] when an evaluation fails.
    fn search(&self, space: &SearchSpace) -> Result<(), ExploreError>;
}

/// Scores every point of the space (delegating the grid to
/// [`Experiment`]) — the reference strategy, exact by construction.
#[derive(Debug, Clone, Copy, Default)]
pub struct Exhaustive;

impl SearchStrategy for Exhaustive {
    fn name(&self) -> String {
        "exhaustive".into()
    }

    fn search(&self, space: &SearchSpace) -> Result<(), ExploreError> {
        space.evaluate_all()
    }
}

/// Builds the restart's weight vector: restarts cycle through each
/// objective's emphasis plus a uniform blend, steering successive climbs
/// toward different regions of the frontier.
fn restart_weights(objectives: usize, restart: usize) -> Vec<f64> {
    let slot = restart % (objectives + 1);
    if slot == objectives {
        vec![1.0; objectives]
    } else {
        (0..objectives)
            .map(|i| if i == slot { 1.0 } else { 0.05 })
            .collect()
    }
}

/// Per-axis greedy hill climbing with seeded random restarts: from each
/// start, repeatedly scan one axis at a time (all candidate values, other
/// coordinates fixed), move to the best strict improvement, and stop at a
/// local optimum. Restarts rotate objective weights so different climbs
/// pull toward different ends of the frontier.
#[derive(Debug, Clone)]
pub struct GreedyAscent {
    restarts: usize,
    seed: u64,
    budget: Option<usize>,
}

impl Default for GreedyAscent {
    fn default() -> GreedyAscent {
        GreedyAscent::new()
    }
}

impl GreedyAscent {
    /// Four seeded restarts, unlimited budget.
    pub fn new() -> GreedyAscent {
        GreedyAscent {
            restarts: 4,
            seed: 0x6d69_6d00,
            budget: None,
        }
    }

    /// Number of restarts (at least 1).
    pub fn restarts(mut self, restarts: usize) -> GreedyAscent {
        self.restarts = restarts.max(1);
        self
    }

    /// Reseeds the restart-position stream.
    pub fn seed(mut self, seed: u64) -> GreedyAscent {
        self.seed = seed;
        self
    }

    /// Caps the number of distinct points evaluated (at least 1, so the
    /// start point is always scored); the climb stops cleanly when the
    /// budget runs out.
    pub fn budget(mut self, budget: usize) -> GreedyAscent {
        self.budget = Some(budget.max(1));
        self
    }

    fn exhausted(&self, space: &SearchSpace) -> bool {
        self.budget.is_some_and(|b| space.evaluations() >= b)
    }
}

impl SearchStrategy for GreedyAscent {
    fn name(&self) -> String {
        format!("greedy-r{}", self.restarts)
    }

    fn search(&self, space: &SearchSpace) -> Result<(), ExploreError> {
        let lens = space.axis_lens();
        let mut rng = SplitMix64::new(self.seed);
        for restart in 0..self.restarts {
            let weights = restart_weights(space.objective_count(), restart);
            let mut coords = [
                rng.below(lens[0]),
                rng.below(lens[1]),
                rng.below(lens[2]),
                rng.below(lens[3]),
            ];
            if self.exhausted(space) {
                return Ok(());
            }
            let start = space.index_of(coords).expect("coords within axes");
            let mut current = scalarize(&space.evaluate(start)?, &weights);
            let mut improved = true;
            while improved {
                improved = false;
                for axis in 0..4 {
                    let mut best = (current, coords[axis]);
                    for value in 0..lens[axis] {
                        if value == coords[axis] {
                            continue;
                        }
                        if self.exhausted(space) {
                            return Ok(());
                        }
                        let mut candidate = coords;
                        candidate[axis] = value;
                        let index = space.index_of(candidate).expect("coords within axes");
                        let score = scalarize(&space.evaluate(index)?, &weights);
                        if score < best.0 {
                            best = (score, value);
                        }
                    }
                    if best.1 != coords[axis] {
                        coords[axis] = best.1;
                        current = best.0;
                        improved = true;
                    }
                }
            }
        }
        Ok(())
    }
}

/// Seeded, deterministic simulated annealing with an evaluation budget:
/// a random axis step per iteration, always accepting improvements and
/// accepting regressions with probability `exp(-Δ/T)` under a geometric
/// cooling schedule. The same seed and budget reproduce the identical
/// walk — and therefore a byte-identical exploration report.
#[derive(Debug, Clone)]
pub struct Anneal {
    seed: u64,
    budget: usize,
    t0: f64,
    t1: f64,
}

impl Anneal {
    /// An annealer with the given seed and a 512-step budget.
    pub fn new(seed: u64) -> Anneal {
        Anneal {
            seed,
            budget: 512,
            t0: 0.5,
            t1: 1e-3,
        }
    }

    /// Sets the step budget (each step proposes one neighbor; distinct
    /// points evaluated is at most `budget + 1`).
    pub fn budget(mut self, budget: usize) -> Anneal {
        self.budget = budget.max(1);
        self
    }

    /// Sets the start/end temperatures of the geometric cooling schedule
    /// (in scalarized log-score units).
    pub fn temperature(mut self, t0: f64, t1: f64) -> Anneal {
        self.t0 = t0.max(1e-12);
        self.t1 = t1.max(1e-12);
        self
    }
}

impl SearchStrategy for Anneal {
    fn name(&self) -> String {
        format!("anneal-s{}-b{}", self.seed, self.budget)
    }

    fn search(&self, space: &SearchSpace) -> Result<(), ExploreError> {
        let lens = space.axis_lens();
        let weights = vec![1.0; space.objective_count()];
        let mut rng = SplitMix64::new(self.seed);
        let movable: Vec<usize> = (0..4).filter(|&axis| lens[axis] > 1).collect();
        let mut coords = [
            rng.below(lens[0]),
            rng.below(lens[1]),
            rng.below(lens[2]),
            rng.below(lens[3]),
        ];
        let start = space.index_of(coords).expect("coords within axes");
        let mut current = scalarize(&space.evaluate(start)?, &weights);
        if movable.is_empty() {
            return Ok(()); // one-point space: nothing to walk
        }
        for step in 0..self.budget {
            let axis = movable[rng.below(movable.len())];
            let offset = 1 + rng.below(lens[axis] - 1);
            let mut candidate = coords;
            candidate[axis] = (coords[axis] + offset) % lens[axis];
            let index = space.index_of(candidate).expect("coords within axes");
            let score = scalarize(&space.evaluate(index)?, &weights);
            let delta = score - current;
            let temperature = self.t0 * (self.t1 / self.t0).powf(step as f64 / self.budget as f64);
            if delta < 0.0 || rng.unit() < (-delta / temperature).exp() {
                coords = candidate;
                current = score;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_is_deterministic_and_uniformish() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        let mut hits = [0usize; 4];
        for _ in 0..4000 {
            hits[c.below(4)] += 1;
        }
        assert!(hits.iter().all(|&h| h > 800), "roughly uniform: {hits:?}");
        for _ in 0..1000 {
            let u = c.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn scalarize_is_scale_free_and_monotone() {
        let w = [1.0, 1.0];
        let base = scalarize(&[2.0, 3.0], &w);
        let worse = scalarize(&[2.2, 3.0], &w);
        assert!(worse > base, "larger scores scalarize larger");
        // Rescaling one objective shifts all scalarizations by the same
        // constant, preserving every comparison.
        let scaled_base = scalarize(&[2000.0, 3.0], &w);
        let scaled_worse = scalarize(&[2200.0, 3.0], &w);
        assert!(((scaled_worse - scaled_base) - (worse - base)).abs() < 1e-12);
    }

    #[test]
    fn restart_weights_cycle_objectives_then_blend() {
        assert_eq!(restart_weights(2, 0), vec![1.0, 0.05]);
        assert_eq!(restart_weights(2, 1), vec![0.05, 1.0]);
        assert_eq!(restart_weights(2, 2), vec![1.0, 1.0]);
        assert_eq!(restart_weights(2, 3), vec![1.0, 0.05], "cycles");
    }
}
