//! The [`Exploration`] builder and its deterministic
//! [`ExplorationReport`], including the paper's headline hybrid
//! model→sim workflow.

use std::time::Instant;

use mim_core::DesignSpace;
use mim_runner::{parallel_map, EvalKind, WorkloadSpec, WorkloadStore};
use mim_workloads::WorkloadSize;
use serde::{Deserialize, Serialize};

use crate::error::ExploreError;
use crate::objective::Objective;
use crate::pareto::{kendall_tau, pruned_indices, Frontier};
use crate::strategy::{scalarize, Exhaustive, PointScorer, SearchSpace, SearchStrategy};

/// Wall-clock breakdown of an exploration run. Not serialized (it varies
/// run to run, and reports must be byte-deterministic).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExplorationTiming {
    /// Worker threads used for grid and sim-verification phases.
    pub threads: usize,
    /// Wall seconds spent in the search phase (model-guided).
    pub search_seconds: f64,
    /// Wall seconds spent sim-verifying frontier survivors.
    pub sim_seconds: f64,
    /// End-to-end wall seconds.
    pub total_seconds: f64,
}

/// One evaluated design point: its flat index, machine id, and objective
/// scores (aggregated across the exploration's workloads).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvaluatedPoint {
    /// Flat index of the point within the design space.
    pub point_index: usize,
    /// Machine id of the design point.
    pub machine_id: String,
    /// Objective scores, in the exploration's objective order.
    pub scores: Vec<f64>,
}

/// One pruning survivor in the hybrid workflow, carrying both its model
/// scores and its simulator-verified scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridPoint {
    /// Flat index of the point within the design space.
    pub point_index: usize,
    /// Machine id of the design point.
    pub machine_id: String,
    /// Model-predicted objective scores.
    pub model_scores: Vec<f64>,
    /// Detailed-simulation objective scores.
    pub sim_scores: Vec<f64>,
}

/// Outcome of the hybrid model→sim workflow (§6 of the paper made
/// operational): the model scores every candidate, margin-relaxed
/// dominance prunes the space down to frontier contenders, and only those
/// survivors are re-evaluated with detailed simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HybridReport {
    /// Pruning margin: a candidate survives unless something beats it by
    /// more than this relative slack in every objective.
    pub margin: f64,
    /// Survivors of model pruning, ascending by point index, with model
    /// and simulation scores side by side.
    pub survivors: Vec<HybridPoint>,
    /// Number of design points evaluated with the simulator.
    pub sim_points: usize,
    /// Simulated fraction of the whole space (the exploration-cost
    /// headline: how little simulation the hybrid spent).
    pub sim_fraction: f64,
    /// The sim-verified frontier over the survivors.
    pub frontier: Frontier,
    /// Kendall rank correlation between model and simulation scalarized
    /// scores over the survivors: `1.0` means the model ranks every
    /// contender pair exactly as the simulator does.
    pub rank_fidelity: f64,
}

/// The outcome of [`Exploration::run`]: every point the strategy
/// evaluated (ascending by point index), the model frontier, and — for
/// hybrid runs — the sim-verified frontier.
///
/// Serialization is deterministic: the same exploration produces
/// byte-identical JSON for any thread count (timing lives outside the
/// serialized fields), matching the `ExperimentReport` guarantee.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplorationReport {
    /// Exploration title.
    pub title: String,
    /// Strategy name.
    pub strategy: String,
    /// Evaluator family used for the search phase.
    pub evaluator: String,
    /// Objective names, in score order.
    pub objectives: Vec<String>,
    /// Workload names.
    pub workloads: Vec<String>,
    /// Workload size label.
    pub size: String,
    /// Instruction budget per evaluation, if truncated.
    pub limit: Option<u64>,
    /// Total number of points in the design space.
    pub space_points: usize,
    /// Every evaluated point, ascending by point index.
    pub evaluated: Vec<EvaluatedPoint>,
    /// The exact Pareto frontier over the evaluated points.
    pub frontier: Frontier,
    /// Hybrid model→sim verification, when enabled.
    pub hybrid: Option<HybridReport>,
    /// Wall-clock breakdown (not serialized).
    #[serde(skip)]
    pub timing: ExplorationTiming,
}

impl ExplorationReport {
    /// Fraction of the space the search evaluated.
    pub fn evaluated_fraction(&self) -> f64 {
        if self.space_points == 0 {
            return 0.0;
        }
        self.evaluated.len() as f64 / self.space_points as f64
    }

    /// Serializes the report as pretty JSON (deterministic bytes).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serialization is infallible")
    }

    /// Parses a report back from JSON.
    ///
    /// # Errors
    ///
    /// Returns the parse error on malformed input.
    pub fn from_json(text: &str) -> Result<ExplorationReport, serde_json::Error> {
        serde_json::from_str(text)
    }
}

/// Declarative builder for a design-space exploration: workloads × a
/// design space × objectives, searched by a pluggable
/// [`SearchStrategy`] and optionally sim-verified (the hybrid workflow).
///
/// Like [`Experiment`](mim_runner::Experiment), each workload is profiled
/// **once** per exploration — the strategy, the exhaustive grid, and the
/// hybrid sim-verification pass all share one [`WorkloadStore`].
///
/// # Example
///
/// ```
/// use mim_core::{DesignSpace, MachineConfig};
/// use mim_explore::{Exploration, GreedyAscent, Objective};
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let space = DesignSpace::new(MachineConfig::default_config())
///     .with_widths(vec![1, 2, 3, 4])
///     .expect("distinct widths");
/// let report = Exploration::new(space)
///     .workload(mibench::sha())
///     .size(WorkloadSize::Tiny)
///     .objectives([Objective::delay(), Objective::energy()])
///     .strategy(GreedyAscent::new().restarts(2))
///     .run()
///     .expect("exploration");
/// assert!(!report.frontier.is_empty());
/// ```
pub struct Exploration {
    title: String,
    space: DesignSpace,
    workloads: Vec<WorkloadSpec>,
    weights: Option<Vec<f64>>,
    size: WorkloadSize,
    limit: Option<u64>,
    objectives: Vec<Objective>,
    strategy: Box<dyn SearchStrategy>,
    kind: EvalKind,
    energy: bool,
    threads: usize,
    cache: WorkloadStore,
    sim_verify: Option<f64>,
}

impl Exploration {
    /// Creates an exploration over `space` with the [`Exhaustive`]
    /// strategy and the mechanistic-model evaluator.
    pub fn new(space: DesignSpace) -> Exploration {
        Exploration {
            title: String::new(),
            space,
            workloads: Vec::new(),
            weights: None,
            size: WorkloadSize::Small,
            limit: None,
            objectives: Vec::new(),
            strategy: Box::new(Exhaustive),
            kind: EvalKind::Model,
            energy: false,
            threads: 0,
            cache: WorkloadStore::new(),
            sim_verify: None,
        }
    }

    /// Sets the report title.
    pub fn title(mut self, title: impl Into<String>) -> Exploration {
        self.title = title.into();
        self
    }

    /// Adds workloads.
    pub fn workloads<I, W>(mut self, workloads: I) -> Exploration
    where
        I: IntoIterator<Item = W>,
        W: Into<WorkloadSpec>,
    {
        self.workloads.extend(workloads.into_iter().map(Into::into));
        self
    }

    /// Adds one workload.
    pub fn workload(mut self, workload: impl Into<WorkloadSpec>) -> Exploration {
        self.workloads.push(workload.into());
        self
    }

    /// Weights the per-workload objective aggregation (default: uniform
    /// mean). One weight per workload, in workload order; weights are
    /// normalized to sum to 1 before scoring.
    ///
    /// This is how a representative subset stands in for a full suite
    /// (`mim-select`): explore the space over the cluster medoids only,
    /// weighting each medoid by its cluster's share of the suite, and the
    /// frontier approximates the exhaustive-suite frontier at a fraction
    /// of the evaluation cost.
    pub fn workload_weights(mut self, weights: impl IntoIterator<Item = f64>) -> Exploration {
        self.weights = Some(weights.into_iter().collect());
        self
    }

    /// Sets the workload size (default [`WorkloadSize::Small`]).
    pub fn size(mut self, size: WorkloadSize) -> Exploration {
        self.size = size;
        self
    }

    /// Truncates every profile/simulation to `limit` retired instructions.
    pub fn limit(mut self, limit: u64) -> Exploration {
        self.limit = Some(limit);
        self
    }

    /// Adds objectives (all minimized; order keys score vectors).
    pub fn objectives(mut self, objectives: impl IntoIterator<Item = Objective>) -> Exploration {
        self.objectives.extend(objectives);
        self
    }

    /// Adds one objective.
    pub fn objective(mut self, objective: Objective) -> Exploration {
        self.objectives.push(objective);
        self
    }

    /// Replaces the search strategy (default [`Exhaustive`]).
    pub fn strategy(mut self, strategy: impl SearchStrategy + 'static) -> Exploration {
        self.strategy = Box::new(strategy);
        self
    }

    /// Selects the evaluator family for the search phase (default
    /// [`EvalKind::Model`] — the point of the paper).
    pub fn evaluator(mut self, kind: EvalKind) -> Exploration {
        self.kind = kind;
        self
    }

    /// Forces energy evaluation on even when no built-in objective needs
    /// it (custom objectives that read [`EvalResult::energy`] want this).
    ///
    /// [`EvalResult::energy`]: mim_runner::EvalResult::energy
    pub fn energy(mut self, energy: bool) -> Exploration {
        self.energy = energy;
        self
    }

    /// Number of worker threads for grid and sim-verification phases;
    /// `0` (the default) uses all cores. Any value produces byte-identical
    /// reports.
    pub fn threads(mut self, threads: usize) -> Exploration {
        self.threads = threads;
        self
    }

    /// Enables the hybrid workflow: after the model-guided search, prune
    /// the evaluated points with `margin`-relaxed dominance and
    /// re-evaluate only the survivors with detailed simulation
    /// ([`EvalKind::Sim`]). The margin is the slack granted to model
    /// error: scores aggregate across workloads, where per-point errors
    /// (2.5% on average, Fig. 5) largely cancel, so `0.02`–`0.05` suits
    /// multi-benchmark explorations; single-workload runs see the full
    /// per-point error (up to ~10%) and want a correspondingly wider
    /// margin.
    pub fn sim_verify(mut self, margin: f64) -> Exploration {
        self.sim_verify = Some(margin.max(0.0));
        self
    }

    /// The exploration's shared profile cache (hand it to other
    /// experiments to reuse the same one-pass profiles).
    pub fn profile_cache(&self) -> WorkloadStore {
        self.cache.clone()
    }

    /// Replaces the profile cache with a shared one.
    pub fn with_cache(mut self, cache: WorkloadStore) -> Exploration {
        self.cache = cache;
        self
    }

    /// Runs the search (and, for hybrid runs, the sim-verification pass)
    /// and returns the report.
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] for a misconfigured exploration or a
    /// failed evaluation.
    pub fn run(self) -> Result<ExplorationReport, ExploreError> {
        let t_start = Instant::now();
        if self.workloads.is_empty() {
            return Err(ExploreError::config("no workloads configured"));
        }
        if self.objectives.is_empty() {
            return Err(ExploreError::config("no objectives configured"));
        }
        if self.space.is_empty() {
            return Err(ExploreError::config("design space has no points"));
        }
        let weights = match &self.weights {
            None => vec![1.0 / self.workloads.len() as f64; self.workloads.len()],
            Some(weights) => {
                if weights.len() != self.workloads.len() {
                    return Err(ExploreError::config(format!(
                        "{} workload weights for {} workloads",
                        weights.len(),
                        self.workloads.len()
                    )));
                }
                if weights.iter().any(|w| !w.is_finite() || *w < 0.0) {
                    return Err(ExploreError::config(
                        "workload weights must be finite and non-negative",
                    ));
                }
                let total: f64 = weights.iter().sum();
                if total <= 0.0 {
                    return Err(ExploreError::config("workload weights sum to zero"));
                }
                weights.iter().map(|w| w / total).collect()
            }
        };
        let energy = self.energy || self.objectives.iter().any(Objective::needs_energy);
        let threads = if self.threads > 0 {
            self.threads
        } else {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        };

        // Hybrid runs simulate survivors later: record each workload's
        // trace now so the model search's profiling pass replays the same
        // recording phase 2 will — one functional execution per workload
        // for the whole exploration. (Model-only runs skip this and let
        // the profiler stream, trace-free.)
        if self.sim_verify.is_some() || self.kind != EvalKind::Model {
            let warmed: Vec<Result<(), ExploreError>> =
                parallel_map(threads, &self.workloads, |_, spec| {
                    self.cache.trace(spec, self.size, self.limit)?;
                    Ok(())
                });
            for outcome in warmed {
                outcome?;
            }
        }

        // Phase 1 — model-guided search. Every point the strategy visits
        // is scored through the shared, memoized search space.
        let scorer = PointScorer {
            space: self.space.clone(),
            workloads: self.workloads.clone(),
            weights: weights.clone(),
            size: self.size,
            limit: self.limit,
            kind: self.kind,
            energy,
            cache: self.cache.clone(),
            objectives: self.objectives.clone(),
            threads,
        };
        let t_search = Instant::now();
        let search_space = SearchSpace::new(&scorer);
        self.strategy.search(&search_space)?;
        let search_seconds = t_search.elapsed().as_secs_f64();
        let visited = search_space.into_evaluated();
        if visited.is_empty() {
            return Err(ExploreError::config(format!(
                "strategy `{}` evaluated no points",
                self.strategy.name()
            )));
        }
        let evaluated: Vec<EvaluatedPoint> = visited
            .into_iter()
            .map(|(point_index, scores)| EvaluatedPoint {
                point_index,
                machine_id: self
                    .space
                    .point_at(point_index)
                    .expect("memoized index within space")
                    .machine
                    .id(),
                scores,
            })
            .collect();
        let objective_names: Vec<String> = self
            .objectives
            .iter()
            .map(|o| o.name().to_string())
            .collect();
        let candidates: Vec<(usize, String, Vec<f64>)> = evaluated
            .iter()
            .map(|p| (p.point_index, p.machine_id.clone(), p.scores.clone()))
            .collect();
        let frontier = Frontier::from_candidates(objective_names.clone(), &candidates);

        // Phase 2 (hybrid runs) — margin-relaxed pruning, then detailed
        // simulation of the survivors only.
        let t_sim = Instant::now();
        let hybrid = match self.sim_verify {
            None => None,
            Some(margin) => Some(self.run_sim_verification(
                margin,
                &evaluated,
                objective_names.clone(),
                &weights,
                energy,
                threads,
            )?),
        };
        let sim_seconds = t_sim.elapsed().as_secs_f64();

        Ok(ExplorationReport {
            title: self.title,
            strategy: self.strategy.name(),
            evaluator: self.kind.label().to_string(),
            objectives: objective_names,
            workloads: self
                .workloads
                .iter()
                .map(|w| w.name().to_string())
                .collect(),
            size: self.size.to_string(),
            limit: self.limit,
            space_points: self.space.len(),
            evaluated,
            frontier,
            hybrid,
            timing: ExplorationTiming {
                threads,
                search_seconds,
                sim_seconds,
                total_seconds: t_start.elapsed().as_secs_f64(),
            },
        })
    }

    fn run_sim_verification(
        &self,
        margin: f64,
        evaluated: &[EvaluatedPoint],
        objective_names: Vec<String>,
        weights: &[f64],
        energy: bool,
        threads: usize,
    ) -> Result<HybridReport, ExploreError> {
        let model_scores: Vec<Vec<f64>> = evaluated.iter().map(|p| p.scores.clone()).collect();
        let survivor_positions = pruned_indices(&model_scores, margin);
        let sim_scorer = PointScorer {
            space: self.space.clone(),
            workloads: self.workloads.clone(),
            weights: weights.to_vec(),
            size: self.size,
            limit: self.limit,
            kind: EvalKind::Sim,
            energy,
            cache: self.cache.clone(),
            objectives: self.objectives.clone(),
            threads,
        };
        // Recordings were warmed by `run` before the model search, so the
        // parallel fan-out below only ever replays.
        let outcomes = parallel_map(threads, &survivor_positions, |_, &position| {
            sim_scorer.score_point(evaluated[position].point_index)
        });
        let mut survivors = Vec::with_capacity(outcomes.len());
        for (position, outcome) in survivor_positions.iter().zip(outcomes) {
            let point = &evaluated[*position];
            survivors.push(HybridPoint {
                point_index: point.point_index,
                machine_id: point.machine_id.clone(),
                model_scores: point.scores.clone(),
                sim_scores: outcome?,
            });
        }
        let sim_candidates: Vec<(usize, String, Vec<f64>)> = survivors
            .iter()
            .map(|p| (p.point_index, p.machine_id.clone(), p.sim_scores.clone()))
            .collect();
        let frontier = Frontier::from_candidates(objective_names, &sim_candidates);
        let objective_weights = vec![1.0; self.objectives.len()];
        let model_rank: Vec<f64> = survivors
            .iter()
            .map(|p| scalarize(&p.model_scores, &objective_weights))
            .collect();
        let sim_rank: Vec<f64> = survivors
            .iter()
            .map(|p| scalarize(&p.sim_scores, &objective_weights))
            .collect();
        let sim_points = survivors.len();
        Ok(HybridReport {
            margin,
            survivors,
            sim_points,
            sim_fraction: sim_points as f64 / self.space.len() as f64,
            frontier,
            rank_fidelity: kendall_tau(&model_rank, &sim_rank),
        })
    }
}
