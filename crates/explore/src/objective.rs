//! The [`Objective`] abstraction: a named, minimized figure of merit
//! extracted from an [`EvalResult`].

use std::fmt;
use std::sync::Arc;

use mim_core::MachineConfig;
use mim_power::EnergyModel;
use mim_runner::EvalResult;

use crate::error::ExploreError;

/// A named scalar objective over one evaluation cell, always **minimized**.
///
/// Built-in objectives cover the paper's metrics — CPI, execution delay,
/// energy, EDP and ED²P (§6.3), and die area via `mim-power` — plus
/// weighted combinations and arbitrary closures. Energy-derived objectives
/// read [`EvalResult::energy`] (populated when an exploration enables
/// energy evaluation) rather than recomputing activity counts.
///
/// # Example
///
/// ```
/// use mim_core::MachineConfig;
/// use mim_explore::Objective;
/// use mim_runner::{EvalKind, ModelEvaluator, Evaluator, WorkloadSpec};
/// use mim_workloads::{mibench, WorkloadSize};
///
/// let machine = MachineConfig::default_config();
/// let evaluator = ModelEvaluator::new(&machine).with_energy(true);
/// let result = evaluator
///     .evaluate(&WorkloadSpec::from(mibench::sha()), WorkloadSize::Tiny)
///     .expect("evaluation succeeds");
///
/// let delay = Objective::delay().score(&result, &machine).expect("finite");
/// let edp = Objective::edp().score(&result, &machine).expect("finite");
/// assert!(delay > 0.0 && edp > 0.0);
///
/// // Custom objectives are closures over the same unified record.
/// let miss_rate = Objective::custom("l1d-misses-per-inst", |r, _machine| {
///     r.misses.map_or(0.0, |m| m.l1d_misses as f64) / r.instructions as f64
/// });
/// assert!(miss_rate.score(&result, &machine).expect("finite") >= 0.0);
/// ```
#[derive(Clone)]
pub struct Objective {
    name: String,
    kind: Kind,
}

/// A user-supplied scoring closure over one evaluation cell.
type CustomScore = Arc<dyn Fn(&EvalResult, &MachineConfig) -> f64 + Send + Sync>;

#[derive(Clone)]
enum Kind {
    Cpi,
    Delay,
    Energy,
    Edp,
    Ed2p,
    Area,
    Weighted(Vec<(Objective, f64)>),
    Custom(CustomScore),
}

impl Objective {
    /// Minimize cycles per instruction.
    pub fn cpi() -> Objective {
        Objective {
            name: "cpi".into(),
            kind: Kind::Cpi,
        }
    }

    /// Minimize execution time in seconds (cycles at the design point's
    /// own clock frequency, so frequency points trade off properly).
    pub fn delay() -> Objective {
        Objective {
            name: "delay".into(),
            kind: Kind::Delay,
        }
    }

    /// Minimize total energy in joules. Requires energy evaluation.
    pub fn energy() -> Objective {
        Objective {
            name: "energy".into(),
            kind: Kind::Energy,
        }
    }

    /// Minimize the energy-delay product (the paper's §6.3 metric).
    /// Requires energy evaluation.
    pub fn edp() -> Objective {
        Objective {
            name: "edp".into(),
            kind: Kind::Edp,
        }
    }

    /// Minimize the energy-delay-squared product. Requires energy
    /// evaluation.
    pub fn ed2p() -> Objective {
        Objective {
            name: "ed2p".into(),
            kind: Kind::Ed2p,
        }
    }

    /// Minimize the die-area proxy of the design point (constant per
    /// machine — pairs with a performance objective to expose
    /// area/performance frontiers).
    pub fn area() -> Objective {
        Objective {
            name: "area".into(),
            kind: Kind::Area,
        }
    }

    /// Minimize a weighted sum of other objectives. Weights apply to the
    /// raw scores, so mixed-scale parts should be normalized by the
    /// caller.
    pub fn weighted(name: impl Into<String>, parts: Vec<(Objective, f64)>) -> Objective {
        Objective {
            name: name.into(),
            kind: Kind::Weighted(parts),
        }
    }

    /// Minimize an arbitrary closure over the evaluation record and its
    /// machine configuration.
    pub fn custom(
        name: impl Into<String>,
        score: impl Fn(&EvalResult, &MachineConfig) -> f64 + Send + Sync + 'static,
    ) -> Objective {
        Objective {
            name: name.into(),
            kind: Kind::Custom(Arc::new(score)),
        }
    }

    /// The objective's display name (keys report columns).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// True when scoring reads [`EvalResult::energy`], so the exploration
    /// must enable energy evaluation.
    pub fn needs_energy(&self) -> bool {
        match &self.kind {
            Kind::Energy | Kind::Edp | Kind::Ed2p => true,
            Kind::Weighted(parts) => parts.iter().any(|(o, _)| o.needs_energy()),
            Kind::Cpi | Kind::Delay | Kind::Area | Kind::Custom(_) => false,
        }
    }

    /// Scores one evaluation cell; smaller is better.
    ///
    /// # Errors
    ///
    /// Returns an [`ExploreError`] when the score is non-finite or the
    /// evaluation lacks the required energy report.
    pub fn score(&self, result: &EvalResult, machine: &MachineConfig) -> Result<f64, ExploreError> {
        let energy = |metric: fn(&EvalResult) -> Option<f64>| {
            metric(result).ok_or_else(|| {
                ExploreError::objective(
                    &self.name,
                    "requires energy evaluation (enable it on the exploration)",
                )
            })
        };
        let value = match &self.kind {
            Kind::Cpi => result.cpi,
            Kind::Delay => result.cycles * machine.cycle_seconds(),
            Kind::Energy => energy(EvalResult::total_joules)?,
            Kind::Edp => energy(EvalResult::edp)?,
            Kind::Ed2p => energy(EvalResult::ed2p)?,
            Kind::Area => EnergyModel::new(machine).area_units(),
            Kind::Weighted(parts) => {
                let mut sum = 0.0;
                for (objective, weight) in parts {
                    sum += weight * objective.score(result, machine)?;
                }
                sum
            }
            Kind::Custom(f) => f(result, machine),
        };
        if !value.is_finite() {
            return Err(ExploreError::objective(
                &self.name,
                format!(
                    "produced a non-finite score ({value}) — frontiers need totally ordered scores"
                ),
            ));
        }
        Ok(value)
    }
}

impl fmt::Debug for Objective {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Objective")
            .field("name", &self.name)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mim_runner::{Evaluator, ModelEvaluator, WorkloadSpec};
    use mim_workloads::{mibench, WorkloadSize};

    fn sample(energy: bool) -> (EvalResult, MachineConfig) {
        let machine = MachineConfig::default_config();
        let result = ModelEvaluator::new(&machine)
            .with_energy(energy)
            .evaluate(&WorkloadSpec::from(mibench::crc32()), WorkloadSize::Tiny)
            .expect("evaluation succeeds");
        (result, machine)
    }

    #[test]
    fn builtin_objectives_score_consistently() {
        let (result, machine) = sample(true);
        let cpi = Objective::cpi().score(&result, &machine).expect("cpi");
        assert!((cpi - result.cpi).abs() < 1e-12);
        let delay = Objective::delay().score(&result, &machine).expect("delay");
        assert!((delay - result.cycles * machine.cycle_seconds()).abs() < 1e-18);
        let energy = Objective::energy()
            .score(&result, &machine)
            .expect("energy");
        let edp = Objective::edp().score(&result, &machine).expect("edp");
        let ed2p = Objective::ed2p().score(&result, &machine).expect("ed2p");
        // EDP = E * T and ED²P = E * T², all read from the one report.
        assert!((edp - energy * result.delay_seconds().expect("energy on")).abs() < 1e-18);
        assert!((ed2p - edp * result.delay_seconds().expect("energy on")).abs() < 1e-24);
        let area = Objective::area().score(&result, &machine).expect("area");
        assert!(area > 0.0);
    }

    #[test]
    fn energy_objectives_fail_without_energy_evaluation() {
        let (result, machine) = sample(false);
        for objective in [Objective::energy(), Objective::edp(), Objective::ed2p()] {
            assert!(objective.needs_energy());
            let err = objective
                .score(&result, &machine)
                .expect_err("needs energy");
            assert!(matches!(err, ExploreError::Objective { .. }));
        }
        assert!(!Objective::cpi().needs_energy());
        assert!(Objective::weighted(
            "mix",
            vec![(Objective::cpi(), 0.5), (Objective::edp(), 0.5)]
        )
        .needs_energy());
    }

    #[test]
    fn weighted_and_custom_objectives_compose() {
        let (result, machine) = sample(true);
        let w = Objective::weighted(
            "cpi+delay",
            vec![(Objective::cpi(), 2.0), (Objective::delay(), 1.0)],
        );
        let expected = 2.0 * result.cpi + result.cycles * machine.cycle_seconds();
        assert!((w.score(&result, &machine).expect("weighted") - expected).abs() < 1e-12);

        let c = Objective::custom("width", |_r, m| f64::from(m.width));
        assert_eq!(c.score(&result, &machine).expect("custom"), 4.0);

        let bad = Objective::custom("nan", |_r, _m| f64::NAN);
        assert!(bad.score(&result, &machine).is_err());
    }
}
