//! Integration tests for the exploration subsystem: Pareto correctness
//! against a brute-force reference, seeded-search determinism, the
//! one-pass profiling invariant on a generated large space, and the
//! hybrid model→sim workflow.

use mim_bpred::PredictorConfig;
use mim_cache::CacheConfig;
use mim_core::{DesignSpace, MachineConfig};
use mim_explore::{
    dominates, pareto_indices, Anneal, Exploration, ExplorationReport, GreedyAscent, Objective,
};
use mim_workloads::{mibench, WorkloadSize};
use proptest::prelude::*;

/// Brute-force O(n²) reference: index `i` is on the frontier iff no other
/// vector dominates it.
fn brute_force_frontier(scores: &[Vec<f64>]) -> Vec<usize> {
    (0..scores.len())
        .filter(|&i| !scores.iter().any(|other| dominates(other, &scores[i])))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The sorted-scan frontier extraction agrees exactly with the O(n²)
    /// dominance check, on score grids coarse enough to produce plenty of
    /// duplicates and ties.
    #[test]
    fn frontier_matches_brute_force(raw in proptest::collection::vec((0u32..12, 0u32..12, 0u32..12), 1..120)) {
        let scores: Vec<Vec<f64>> = raw
            .iter()
            .map(|&(a, b, c)| vec![f64::from(a), f64::from(b), f64::from(c)])
            .collect();
        prop_assert_eq!(pareto_indices(&scores), brute_force_frontier(&scores));
    }

    /// Two-objective spaces too (the common delay/energy case).
    #[test]
    fn two_objective_frontier_matches_brute_force(raw in proptest::collection::vec((0u32..40, 0u32..40), 1..150)) {
        let scores: Vec<Vec<f64>> = raw
            .iter()
            .map(|&(a, b)| vec![f64::from(a), f64::from(b)])
            .collect();
        prop_assert_eq!(pareto_indices(&scores), brute_force_frontier(&scores));
    }
}

fn width_space() -> DesignSpace {
    DesignSpace::new(MachineConfig::default_config())
        .with_widths(vec![1, 2, 3, 4])
        .expect("distinct widths")
}

fn anneal_exploration(seed: u64, threads: usize) -> ExplorationReport {
    Exploration::new(width_space())
        .title("anneal determinism")
        .workloads([mibench::sha(), mibench::crc32()])
        .size(WorkloadSize::Tiny)
        .objectives([Objective::delay(), Objective::energy()])
        .strategy(Anneal::new(seed).budget(16))
        .threads(threads)
        .run()
        .expect("exploration")
}

/// The same seed reproduces the identical walk — and a byte-identical
/// report — regardless of thread count.
#[test]
fn seeded_anneal_is_deterministic() {
    let a = anneal_exploration(7, 1);
    let b = anneal_exploration(7, 4);
    assert_eq!(a.to_json(), b.to_json(), "same seed, any threads");
    let c = anneal_exploration(8, 1);
    assert_eq!(c.strategy, "anneal-s8-b16");
    // A different seed walks differently (the space is tiny, so allow the
    // evaluated sets to coincide — the report label alone must differ).
    assert_ne!(a.strategy, c.strategy);
}

/// Exhaustive explorations are byte-identical across thread counts, and
/// reports survive a JSON round trip.
#[test]
fn exhaustive_reports_are_deterministic_and_round_trip() {
    let run = |threads| {
        Exploration::new(width_space())
            .title("exhaustive determinism")
            .workloads([mibench::sha(), mibench::crc32()])
            .size(WorkloadSize::Tiny)
            .objectives([Objective::delay(), Objective::edp()])
            .threads(threads)
            .run()
            .expect("exploration")
    };
    let serial = run(1);
    let parallel = run(8);
    assert_eq!(serial.to_json(), parallel.to_json());
    assert_eq!(serial.evaluated.len(), 4, "every width evaluated");
    assert_eq!(serial.strategy, "exhaustive");

    let round = ExplorationReport::from_json(&serial.to_json()).expect("parse back");
    assert_eq!(round.to_json(), serial.to_json(), "stable re-serialization");
    assert_eq!(round.frontier, serial.frontier);
}

/// Weighted aggregation: degenerate weights reproduce a single-workload
/// exploration, uniform explicit weights reproduce the default mean, and
/// malformed weight vectors are configuration errors.
#[test]
fn workload_weights_shift_the_aggregation() {
    let run = |weights: Option<Vec<f64>>| {
        let mut exploration = Exploration::new(width_space())
            .workloads([mibench::sha(), mibench::dijkstra()])
            .size(WorkloadSize::Tiny)
            .objectives([Objective::cpi()])
            .threads(1);
        if let Some(w) = weights {
            exploration = exploration.workload_weights(w);
        }
        exploration.run().expect("exploration")
    };
    // All the weight on sha == exploring sha alone.
    let sha_only = Exploration::new(width_space())
        .workload(mibench::sha())
        .size(WorkloadSize::Tiny)
        .objectives([Objective::cpi()])
        .threads(1)
        .run()
        .expect("exploration");
    let degenerate = run(Some(vec![1.0, 0.0]));
    for (a, b) in degenerate.evaluated.iter().zip(&sha_only.evaluated) {
        assert!((a.scores[0] - b.scores[0]).abs() < 1e-12);
    }
    // Unnormalized uniform weights == the default mean.
    let uniform = run(None);
    let scaled = run(Some(vec![3.0, 3.0]));
    for (a, b) in scaled.evaluated.iter().zip(&uniform.evaluated) {
        assert!((a.scores[0] - b.scores[0]).abs() < 1e-12);
    }
    // Shifting weight toward the slower workload moves the aggregate CPI.
    let skewed = run(Some(vec![0.1, 0.9]));
    assert!(skewed
        .evaluated
        .iter()
        .zip(&uniform.evaluated)
        .any(|(a, b)| (a.scores[0] - b.scores[0]).abs() > 1e-9));
    // Malformed vectors are rejected up front.
    let bad = |weights: Vec<f64>| {
        Exploration::new(width_space())
            .workloads([mibench::sha(), mibench::dijkstra()])
            .size(WorkloadSize::Tiny)
            .objectives([Objective::cpi()])
            .workload_weights(weights)
            .run()
            .is_err()
    };
    assert!(bad(vec![1.0]), "length mismatch");
    assert!(bad(vec![1.0, -1.0]), "negative weight");
    assert!(bad(vec![0.0, 0.0]), "zero total");
}

/// A generated multi-thousand-point space costs one profiling pass per
/// workload no matter how the strategies wander, because every evaluator
/// shares the exploration's cache.
#[test]
fn large_generated_space_profiles_once_per_workload() {
    let l2s: Vec<CacheConfig> = [64u64, 128, 256, 512, 1024, 2048]
        .iter()
        .flat_map(|&kb| {
            [4u32, 8, 16].iter().map(move |&ways| {
                CacheConfig::new(format!("L2-{kb}K-{ways}w"), kb * 1024, ways, 64)
                    .expect("valid L2 geometry")
            })
        })
        .collect();
    let depth_freq: Vec<(u32, f64)> = (0..10)
        .map(|i| (2 + i, 0.55 + 0.05 * f64::from(i)))
        .collect();
    let space = DesignSpace::new(MachineConfig::default_config())
        .with_widths((1..=8).collect())
        .expect("widths")
        .with_depth_freq(depth_freq)
        .expect("depth/freq")
        .with_l2s(l2s)
        .expect("l2s")
        .with_predictors(vec![
            PredictorConfig::gshare_1k(),
            PredictorConfig::hybrid_3_5k(),
        ])
        .expect("predictors");
    assert_eq!(space.len(), 10 * 8 * 18 * 2, "2880-point generated space");

    let exploration = Exploration::new(space)
        .workload(mibench::qsort())
        .size(WorkloadSize::Tiny)
        .objectives([Objective::delay(), Objective::energy()])
        .strategy(GreedyAscent::new().restarts(3).budget(160))
        .threads(1);
    let cache = exploration.profile_cache();
    let report = exploration.run().expect("exploration");

    assert_eq!(cache.cached_profiles(), 1, "one profiling pass");
    assert!(report.evaluated.len() <= 160, "budget respected");
    assert!(!report.frontier.is_empty());
    assert!(
        report.evaluated_fraction() < 0.06,
        "search, not enumeration"
    );
    // Evaluated points come back sorted by index with valid ids.
    for pair in report.evaluated.windows(2) {
        assert!(pair[0].point_index < pair[1].point_index);
    }
}

/// The hybrid workflow prunes with the model and verifies with the
/// simulator: survivors carry both score vectors, the sim frontier lives
/// inside the survivor set, and rank fidelity is a valid correlation.
#[test]
fn hybrid_workflow_verifies_survivors_with_simulation() {
    let report = Exploration::new(width_space())
        .title("hybrid")
        .workload(mibench::sha())
        .size(WorkloadSize::Tiny)
        .objectives([Objective::delay(), Objective::energy()])
        .sim_verify(0.10)
        .threads(2)
        .run()
        .expect("exploration");
    let hybrid = report.hybrid.as_ref().expect("hybrid enabled");
    assert_eq!(hybrid.sim_points, hybrid.survivors.len());
    assert!(hybrid.sim_points >= report.frontier.len());
    assert!((hybrid.rank_fidelity >= -1.0) && (hybrid.rank_fidelity <= 1.0));
    assert!((hybrid.sim_fraction - hybrid.sim_points as f64 / 4.0).abs() < 1e-12);
    for point in &hybrid.frontier.points {
        assert!(
            hybrid
                .survivors
                .iter()
                .any(|s| s.point_index == point.point_index),
            "sim frontier points are survivors"
        );
    }
    for survivor in &hybrid.survivors {
        assert_eq!(survivor.model_scores.len(), 2);
        assert_eq!(survivor.sim_scores.len(), 2);
        assert!(survivor
            .sim_scores
            .iter()
            .all(|s| s.is_finite() && *s > 0.0));
    }
    // Determinism extends to hybrid runs.
    let again = Exploration::new(width_space())
        .title("hybrid")
        .workload(mibench::sha())
        .size(WorkloadSize::Tiny)
        .objectives([Objective::delay(), Objective::energy()])
        .sim_verify(0.10)
        .threads(8)
        .run()
        .expect("exploration");
    assert_eq!(report.to_json(), again.to_json());
}

/// Misconfigured explorations fail with context instead of panicking.
#[test]
fn configuration_errors_are_reported() {
    let err = Exploration::new(width_space())
        .objectives([Objective::cpi()])
        .run()
        .expect_err("no workloads");
    assert!(err.to_string().contains("no workloads"));

    let err = Exploration::new(width_space())
        .workload(mibench::sha())
        .run()
        .expect_err("no objectives");
    assert!(err.to_string().contains("no objectives"));
}
