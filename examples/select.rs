//! Representative-input selection: characterize the MiBench suite by
//! microarchitecture-independent signatures, cluster, and sweep the
//! paper's Table 2 design space on the weighted cluster medoids only —
//! reporting how faithfully the subset reproduces the exhaustive suite.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example select
//! ```

use mim::core::DesignSpace;
use mim::prelude::*;
use mim::workloads::mibench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let report = SubsetRun::new(DesignSpace::paper_table2())
        .title("representative MiBench subset")
        .workloads(mibench::all())
        .size(WorkloadSize::Small)
        .limit(200_000)
        .verify(true) // also run the exhaustive reference, for the study
        .sim_probes(2) // sim-verify the extrapolation error at 2 points
        .threads(0)
        .run()?;

    println!("signatures (microarchitecture-independent):");
    for signature in &report.signatures {
        println!("  {signature}");
    }
    println!(
        "\n{} of {} workloads selected ({:.0}% of the suite):",
        report.selection.k,
        report.workloads.len(),
        100.0 * report.subset_fraction,
    );
    for representative in &report.selection.representatives {
        println!(
            "  {:<14} weight {:.3}  ~ {}",
            representative.name,
            representative.weight,
            representative.members.join(", "),
        );
    }

    let verify = report.verify.as_ref().expect("verification enabled");
    let probe = report.sim_probe.as_ref().expect("probes enabled");
    println!(
        "\nextrapolation across {} design points: rank tau {:.3}, mean error {:.2}%, \
         sim-verified bound {:.2}%",
        report.machines.len(),
        verify.rank_tau,
        verify.mean_error_percent,
        probe.bound_percent,
    );
    println!(
        "exhaustive sweep {:.2} s vs subset sweep {:.2} s ({:.1}x cheaper)",
        report.timing.verify_seconds,
        report.timing.subset_seconds,
        report.sweep_speedup(),
    );
    Ok(())
}
