//! Design-space exploration with Pareto frontiers and the hybrid
//! model→sim workflow: the mechanistic model scores every point of the
//! paper's 192-point Table 2 space from one profiling pass, margin
//! pruning keeps the frontier contenders, and detailed simulation
//! verifies only those — the paper's §5–6 exploration story in one
//! declaration.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example explore [benchmark]
//! ```

use mim::prelude::*;
use mim::workloads::mibench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "sha".into());
    let workload = mibench::all()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name}"))?;

    let report = Exploration::new(DesignSpace::paper_table2())
        .title("delay/energy Pareto exploration")
        .workload(workload)
        .size(WorkloadSize::Small)
        .limit(200_000)
        .objectives([Objective::delay(), Objective::energy()])
        .sim_verify(0.12) // prune with 12% slack, simulate survivors only
        .threads(0)
        .run()?;
    let hybrid = report.hybrid.as_ref().expect("sim_verify enabled");

    println!(
        "{name}: model scored all {} points in {:.2} s; simulation verified \
         {} survivors ({:.1}% of the space) in {:.2} s\n",
        report.space_points,
        report.timing.search_seconds,
        hybrid.sim_points,
        100.0 * hybrid.sim_fraction,
        report.timing.sim_seconds,
    );
    println!("sim-verified Pareto frontier (delay vs energy):");
    for point in &hybrid.frontier.points {
        println!(
            "  {:<44} delay {:.3e} s  energy {:.3e} J",
            point.machine_id, point.scores[0], point.scores[1],
        );
    }
    println!(
        "\nmodel-vs-sim rank fidelity over the contenders: {:.3} (Kendall tau)",
        hybrid.rank_fidelity,
    );

    // Single-objective optima fall out of the same report.
    let best_delay = hybrid
        .frontier
        .points
        .iter()
        .min_by(|a, b| a.scores[0].partial_cmp(&b.scores[0]).expect("finite"))
        .expect("nonempty frontier");
    let best_energy = hybrid
        .frontier
        .points
        .iter()
        .min_by(|a, b| a.scores[1].partial_cmp(&b.scores[1]).expect("finite"))
        .expect("nonempty frontier");
    println!("\nfastest configuration:       {}", best_delay.machine_id);
    println!("most efficient configuration: {}", best_energy.machine_id);
    Ok(())
}
