//! Bring your own kernel: write a program against the `mim-isa` builder,
//! then put it through the whole toolchain — functional execution, then
//! one `Experiment` comparing the in-order model, detailed simulation,
//! and the out-of-order interval model (paper §6.1).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use mim::core::StackComponent;
use mim::isa::{ProgramBuilder, Reg};
use mim::prelude::*;

/// A little fixed-point dot-product kernel with a deliberate load-use
/// chain, so both dependency and multiply penalties show up.
fn dot_product(n: usize) -> mim::isa::Program {
    let mut b = ProgramBuilder::named("dot-product");
    let xs: Vec<i64> = (0..n as i64).map(|i| (i * 7) % 100).collect();
    let ys: Vec<i64> = (0..n as i64).map(|i| (i * 13) % 100).collect();
    let x_base = b.data_words(&xs);
    let y_base = b.data_words(&ys);
    let out = b.alloc_words(1);

    let (i, nreg, acc) = (Reg::R1, Reg::R2, Reg::R3);
    let (xa, ya, xv, yv, prod, tmp) = (Reg::R4, Reg::R5, Reg::R6, Reg::R7, Reg::R8, Reg::R9);
    b.li(i, 0);
    b.li(nreg, n as i64);
    b.li(acc, 0);
    let top = b.here();
    b.slli(tmp, i, 3);
    b.addi(xa, tmp, x_base as i64);
    b.addi(ya, tmp, y_base as i64);
    b.ld(xv, xa, 0);
    b.ld(yv, ya, 0);
    b.mul(prod, xv, yv); // load-use into a multiply: worst case in-order
    b.add(acc, acc, prod);
    b.addi(i, i, 1);
    b.blt(i, nreg, top);
    b.li(tmp, out as i64);
    b.st(acc, tmp, 0);
    b.halt();
    b.build()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = dot_product(50_000);

    // Functional check first: does it compute the right answer?
    let mut vm = Vm::new(&program);
    vm.run(None)?;
    let result = *vm.memory().last().expect("output word");
    let expected: i64 = (0..50_000i64)
        .map(|i| ((i * 7) % 100) * ((i * 13) % 100))
        .sum();
    assert_eq!(result, expected);
    println!("functional result OK: {result}");

    // One experiment, three evaluators, shared profile.
    let report = Experiment::new()
        .title("custom kernel")
        .workload(WorkloadSpec::program("dot-product", program))
        .evaluators([EvalKind::Model, EvalKind::Sim, EvalKind::Ooo])
        .rob_size(128)
        .run()?;

    let in_order = report.get("dot-product", 0, "model").expect("cell");
    let sim = report.get("dot-product", 0, "sim").expect("cell");
    let ooo = report.get("dot-product", 0, "ooo").expect("cell");
    println!(
        "\nin-order:  model CPI {:.3} | simulated CPI {:.3} (error {:+.1}%)",
        in_order.cpi,
        sim.cpi,
        100.0 * (in_order.cpi - sim.cpi) / sim.cpi
    );

    // The §6.1 comparison: the out-of-order interval model hides the
    // dependency and multiply stalls that dominate this kernel in order.
    println!("out-of-order interval model CPI: {:.3}", ooo.cpi);
    let stack_of = |r: &EvalResult| r.stack.clone().expect("analytical rows carry stacks");
    let (s_in, s_ooo) = (stack_of(in_order), stack_of(ooo));
    let n = in_order.instructions as f64;
    println!(
        "\ncomponent        in-order   out-of-order   (CPI)\n\
         dependencies     {:>8.3}   {:>12.3}\n\
         mul/div          {:>8.3}   {:>12.3}\n\
         branch miss      {:>8.3}   {:>12.3}",
        s_in.dependencies() / n,
        s_ooo.dependencies() / n,
        s_in.mul_div() / n,
        s_ooo.mul_div() / n,
        s_in.cpi_of(StackComponent::BranchMiss),
        s_ooo.cpi_of(StackComponent::BranchMiss),
    );
    Ok(())
}
