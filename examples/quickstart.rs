//! Quickstart: profile a benchmark once, predict its CPI stack with the
//! mechanistic model, and validate against detailed simulation.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's default machine: 4-wide, 9-stage, 1 GHz, 32 KB L1s,
    // 512 KB L2, 1 KB gshare predictor (Table 2).
    let machine = MachineConfig::default_config();
    println!("machine: {machine}\n");

    // Pick a workload: the SHA-1-style digest kernel (MiBench `sha`).
    let program = mim::workloads::mibench::sha().program(WorkloadSize::Small);
    println!(
        "workload: {} ({} static instructions)",
        program.name(),
        program.len()
    );

    // 1. Profile once — a single functional pass collects the instruction
    //    mix, dependency-distance profiles, cache misses and branch
    //    mispredictions (paper Figure 2).
    let inputs = Profiler::new(&machine).profile(&program)?;
    println!(
        "profiled {} dynamic instructions ({:.1}% loads/stores, {} branch mispredicts)",
        inputs.num_insts,
        100.0 * inputs.mix.memory_fraction(),
        inputs.branch.mispredicts
    );

    // 2. Evaluate the model: closed-form, microseconds per design point.
    let stack = MechanisticModel::new(&machine).predict(&inputs);
    println!("\n{stack}");

    // 3. Compare against cycle-accurate simulation.
    let sim = PipelineSim::new(&machine).simulate(&program)?;
    let err = 100.0 * (stack.cpi() - sim.cpi()) / sim.cpi();
    println!("detailed simulation: CPI = {:.4}", sim.cpi());
    println!("model prediction:    CPI = {:.4}  (error {err:+.2}%)", stack.cpi());
    Ok(())
}
