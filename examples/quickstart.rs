//! Quickstart: evaluate a benchmark with the mechanistic model and
//! validate it against detailed simulation — one `Experiment`, two
//! evaluators, zero hand-wiring.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use mim::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The paper's default machine: 4-wide, 9-stage, 1 GHz, 32 KB L1s,
    // 512 KB L2, 1 KB gshare predictor (Table 2).
    let machine = MachineConfig::default_config();
    println!("machine: {machine}\n");

    // One experiment: profile the workload once (paper Figure 2), predict
    // its CPI stack with the mechanistic model, and simulate it
    // cycle-accurately for reference.
    let report = Experiment::new()
        .title("quickstart")
        .machine(machine)
        .workload(mim::workloads::mibench::sha())
        .size(WorkloadSize::Small)
        .evaluators([EvalKind::Model, EvalKind::Sim])
        .run()?;

    let model = report.get("sha", 0, "model").expect("model cell");
    let sim = report.get("sha", 0, "sim").expect("sim cell");
    println!(
        "profiled {} dynamic instructions ({} branch mispredicts)",
        model.instructions,
        model
            .branch
            .expect("model rows carry branch counts")
            .mispredicts
    );
    println!(
        "\n{}",
        model.stack.as_ref().expect("model rows carry stacks")
    );

    let err = 100.0 * (model.cpi - sim.cpi) / sim.cpi;
    println!("detailed simulation: CPI = {:.4}", sim.cpi);
    println!(
        "model prediction:    CPI = {:.4}  (error {err:+.2}%)",
        model.cpi
    );
    println!(
        "\nmodel evaluation took {:.1} µs vs {:.1} ms of simulation (§5)",
        model.wall_seconds * 1e6,
        sim.wall_seconds * 1e3
    );
    Ok(())
}
