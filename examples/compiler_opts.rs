//! Compiler-optimization analysis (paper §6.2): compare the CPI stacks of
//! a kernel compiled three ways — naive ("nosched"), list-scheduled
//! ("O3"), and unrolled+scheduled ("unroll") — and see which mechanistic
//! component each optimization attacks. Each variant is a fixed-program
//! `WorkloadSpec` fed through one shared `Experiment`.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compiler_opts [benchmark]
//! ```

use mim::core::StackComponent;
use mim::prelude::*;
use mim::workloads::{mibench, opt};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tiff2bw".into());
    let workload = mibench::all()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name}"))?;
    let machine = MachineConfig::default_config();

    let nosched = workload.program(WorkloadSize::Small);
    let o3 = opt::schedule(&nosched);
    let unrolled = opt::schedule(&opt::unroll(&nosched, 4));

    let report = Experiment::new()
        .title("compiler options")
        .machine(machine.clone())
        .workloads([
            WorkloadSpec::program("nosched", nosched),
            WorkloadSpec::program("O3", o3),
            WorkloadSpec::program("unroll", unrolled),
        ])
        .evaluators([EvalKind::Model])
        .run()?;

    println!("{name} on {}:\n", machine.id());
    let mut base_cycles = None;
    for label in ["nosched", "O3", "unroll"] {
        let result = report.get(label, 0, "model").expect("cell");
        let stack = result.stack.as_ref().expect("model rows carry stacks");
        let base = *base_cycles.get_or_insert(result.cycles);
        println!(
            "--- {label}: {} insts, {:.0} cycles ({:+.1}% vs nosched)",
            result.instructions,
            result.cycles,
            100.0 * (result.cycles - base) / base
        );
        println!(
            "    base {:>10.0}  deps {:>9.0}  taken-branch {:>8.0}  mul/div {:>8.0}",
            stack.cycles_of(StackComponent::Base),
            stack.dependencies(),
            stack.cycles_of(StackComponent::TakenBranch),
            stack.mul_div(),
        );
    }
    println!(
        "\nScheduling stretches dependency distances; unrolling removes taken\n\
         branches and gives the scheduler independent work from several\n\
         iterations (paper Figure 8)."
    );
    Ok(())
}
