//! Compiler-optimization analysis (paper §6.2): compare the CPI stacks of
//! a kernel compiled three ways — naive ("nosched"), list-scheduled
//! ("O3"), and unrolled+scheduled ("unroll") — and see which mechanistic
//! component each optimization attacks.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example compiler_opts [benchmark]
//! ```

use mim::core::{MachineConfig, MechanisticModel};
use mim::profile::Profiler;
use mim::workloads::{mibench, opt, WorkloadSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "tiff2bw".into());
    let workload = mibench::all()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name}"))?;
    let machine = MachineConfig::default_config();
    let profiler = Profiler::new(&machine);
    let model = MechanisticModel::new(&machine);

    let nosched = workload.program(WorkloadSize::Small);
    let o3 = opt::schedule(&nosched);
    let unrolled = opt::schedule(&opt::unroll(&nosched, 4));

    println!("{name} on {}:\n", machine.id());
    let mut base_cycles = None;
    for (label, program) in [("nosched", &nosched), ("O3", &o3), ("unroll", &unrolled)] {
        let inputs = profiler.profile(program)?;
        let stack = model.predict(&inputs);
        let cycles = stack.total_cycles();
        let base = *base_cycles.get_or_insert(cycles);
        println!(
            "--- {label}: {} insts, {:.0} cycles ({:+.1}% vs nosched)",
            inputs.num_insts,
            cycles,
            100.0 * (cycles - base) / base
        );
        println!(
            "    base {:>10.0}  deps {:>9.0}  taken-branch {:>8.0}  mul/div {:>8.0}",
            stack.cycles_of(mim::core::StackComponent::Base),
            stack.dependencies(),
            stack.cycles_of(mim::core::StackComponent::TakenBranch),
            stack.mul_div(),
        );
    }
    println!(
        "\nScheduling stretches dependency distances; unrolling removes taken\n\
         branches and gives the scheduler independent work from several\n\
         iterations (paper Figure 8)."
    );
    Ok(())
}
