//! A `top`-style live view of a running evaluation server: boot an
//! engine on a private port, submit a sweep, and stream `watch` deltas —
//! one metrics snapshot per tick, counters and histograms as differences,
//! gauges as current values — while the job executes. Afterwards, fetch
//! the finished job's wall-clock profile and print where its time went.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example top
//! ```
//!
//! Against an out-of-process server the same stream is one request line:
//! `{"cmd":"watch","interval_ms":1000,"count":10}`.

use mim::prelude::*;
use mim::serve::{Client, Engine, JobSpec, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 2, 64);
    let server = Server::bind("tcp:127.0.0.1:0", engine)?;
    let addr = server.addr().to_connect_string();
    println!("serving on {addr}");
    let handle = std::thread::spawn(move || server.run());

    let job: mim::serve::protocol::Value = serde_json::from_str(
        r#"{"kind":"experiment","title":"watched sweep",
            "workloads":["sha","qsort","crc32"],"size":"tiny","limit":100000,
            "evaluators":["model","sim"]}"#,
    )?;
    let job = JobSpec::from_value(&job)?;

    // Submit from one connection, watch from another — the stream shows
    // the job's cells completing tick by tick.
    let mut submitter = Client::connect(&addr)?;
    let submitted = submitter.submit(&job)?;
    println!("submitted job {}", submitted.id);

    let mut watcher = Client::connect(&addr)?;
    println!(
        "{:<6} {:>10} {:>10} {:>9}",
        "tick", "cells/s", "hits/s", "running"
    );
    for (tick, delta) in watcher.watch(250, 8)?.iter().enumerate() {
        let evaluated = delta.counter("cells.miss").unwrap_or(0) * 4;
        let hits = delta.counter("cells.hit").unwrap_or(0) * 4;
        let running = delta.gauge("jobs.running").unwrap_or(0);
        println!("{tick:<6} {evaluated:>10} {hits:>10} {running:>9}");
    }

    // The report is ready (or nearly so) by now; block until done, then
    // ask where the wall-clock went.
    submitter.result(submitted.id)?;
    let profile = submitter.profile(submitted.id)?;
    println!("\njob {} profile:", submitted.id);
    if let Some(rows) = profile
        .get("cells")
        .and_then(|c| c.get("by_workload"))
        .and_then(|v| v.as_array())
    {
        for row in rows {
            let name = match row.get("value") {
                Some(mim::serve::protocol::Value::Str(s)) => s.clone(),
                _ => "?".into(),
            };
            let ns = match row.get("total_ns") {
                Some(mim::serve::protocol::Value::UInt(n)) => *n,
                Some(mim::serve::protocol::Value::Int(n)) => (*n).max(0) as u64,
                _ => 0,
            };
            println!("  {name:<12} {:>8.3} ms", ns as f64 / 1e6);
        }
    }

    watcher.shutdown()?;
    drop(watcher);
    drop(submitter);
    handle.join().expect("server thread")?;
    Ok(())
}
