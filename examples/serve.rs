//! The evaluation service, in-process: boot a `mim-serve` engine on a
//! private TCP port, submit the same sweep twice from a client, and show
//! that the second submission coalesces onto the first — one computation,
//! byte-identical reports, and live cache counters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example serve
//! ```
//!
//! The same protocol is available out-of-process via the binary:
//! `mim-serve --addr tcp:127.0.0.1:7171 --store-dir .mim-store`.

use mim::prelude::*;
use mim::serve::{Client, Engine, JobSpec, Server};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A memory-only store; pass `WorkloadStore::persistent(dir)?` instead
    // and results additionally survive process restarts.
    let engine = Engine::start(WorkloadStore::new(), CellMemo::new(), 2, 64);
    let server = Server::bind("tcp:127.0.0.1:0", engine)?;
    let addr = server.addr().to_connect_string();
    println!("serving on {addr}");
    let handle = std::thread::spawn(move || server.run());

    let job: mim::serve::protocol::Value = serde_json::from_str(
        r#"{"kind":"experiment","title":"example sweep",
            "workloads":["sha","qsort"],"size":"tiny","limit":20000,
            "evaluators":["model","sim"]}"#,
    )?;
    let job = JobSpec::from_value(&job)?;

    let mut client = Client::connect(&addr)?;
    let first = client.submit(&job)?;
    let first_text = client.result_text(first.id)?;
    println!("job {} done: {} report bytes", first.id, first_text.len());

    let second = client.submit(&job)?;
    println!(
        "resubmitted: id {} (deduped: {}) — no new work queued",
        second.id, second.deduped
    );
    assert!(second.deduped && second.id == first.id);
    assert_eq!(first_text, client.result_text(second.id)?);

    let stats = client.stats()?;
    println!("server stats: {}", serde_json::to_string(&stats)?);

    client.shutdown()?;
    drop(client);
    handle.join().expect("server thread")?;
    Ok(())
}
