//! Design-space exploration: profile once, evaluate the model on all 192
//! design points of the paper's Table 2 space, and report the
//! energy-delay-product optimum (paper §6.3) — all without a single
//! detailed simulation in the loop, parallel across every core.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space [benchmark]
//! ```

use mim::core::DesignSpace;
use mim::prelude::*;
use mim::workloads::mibench;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gsm_c".into());
    let workload = mibench::all()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name}"))?;

    // One profiling pass covers every L2 size/associativity and both
    // branch predictors of the design space (single-pass sweeps, §2.1);
    // the model plus the energy model then score all 192 points.
    let report = Experiment::new()
        .title("EDP design-space exploration")
        .workload(workload)
        .size(WorkloadSize::Small)
        .design_space(DesignSpace::paper_table2())
        .evaluators([EvalKind::Model])
        .energy(true)
        .threads(0) // all cores
        .run()?;

    let mut results: Vec<(&str, f64, f64)> = report
        .rows_for("model")
        .map(|r| {
            (
                report.machines[r.machine_index].as_str(),
                r.cpi,
                r.edp().expect("energy enabled"),
            )
        })
        .collect();
    results.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite EDP"));

    println!(
        "{name}: profiled once in {:.3} s, evaluated {} design points in {:.4} s \
         ({} threads, {:.4} s wall)\n",
        report.timing.profile_seconds,
        results.len(),
        report.evaluator_seconds("model"),
        report.timing.threads,
        report.timing.eval_seconds,
    );
    println!("best 5 configurations by energy-delay product:");
    for (id, cpi, edp) in results.iter().take(5) {
        println!("  {id:<44} CPI {cpi:>6.3}  EDP {edp:.3e} J*s");
    }
    println!(
        "\nworst configuration: {}",
        results.last().expect("nonempty").0
    );
    Ok(())
}
