//! Design-space exploration: profile once, evaluate the model on all 192
//! design points of the paper's Table 2 space, and report the
//! energy-delay-product optimum (paper §6.3) — all without a single
//! detailed simulation in the loop.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example design_space [benchmark]
//! ```

use std::time::Instant;

use mim::core::{DesignSpace, MechanisticModel};
use mim::power::{Activity, EnergyModel};
use mim::profile::SweepProfiler;
use mim::workloads::{mibench, WorkloadSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let name = std::env::args().nth(1).unwrap_or_else(|| "gsm_c".into());
    let workload = mibench::all()
        .into_iter()
        .find(|w| w.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name}"))?;
    let program = workload.program(WorkloadSize::Small);

    // One profiling pass covers every L2 size/associativity and both
    // branch predictors of the design space (single-pass sweeps, §2.1).
    let space = DesignSpace::paper_table2();
    let t0 = Instant::now();
    let profile = SweepProfiler::for_design_space(&space).profile(&program, None)?;
    let profile_time = t0.elapsed();

    // Evaluate all 192 design points analytically.
    let t1 = Instant::now();
    let mut results: Vec<(String, f64, f64)> = Vec::new(); // (id, cpi, edp)
    for point in space.points() {
        let inputs = profile.inputs_for(point.l2_index, point.predictor_index);
        let stack = MechanisticModel::new(&point.machine).predict(&inputs);
        let activity = Activity::from_model(&inputs, stack.total_cycles());
        let report = EnergyModel::new(&point.machine).evaluate(&activity);
        results.push((point.machine.id(), stack.cpi(), report.edp()));
    }
    let eval_time = t1.elapsed();

    results.sort_by(|a, b| a.2.partial_cmp(&b.2).expect("finite EDP"));
    println!(
        "{name}: profiled once in {profile_time:?}, evaluated {} design points in {eval_time:?}\n",
        results.len()
    );
    println!("best 5 configurations by energy-delay product:");
    for (id, cpi, edp) in results.iter().take(5) {
        println!("  {id:<44} CPI {cpi:>6.3}  EDP {edp:.3e} J*s");
    }
    println!("\nworst configuration: {}", results.last().expect("nonempty").0);
    Ok(())
}
