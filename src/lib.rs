//! # mim — Mechanistic In-order Model
//!
//! A full reproduction of *"A Mechanistic Performance Model for Superscalar
//! In-Order Processors"* (Breughe, Eyerman & Eeckhout, ISPASS 2012) as a
//! Rust workspace. This facade crate re-exports every subsystem:
//!
//! * [`isa`] — virtual RISC-style ISA, program builder, functional VM
//! * [`cache`] — set-associative caches, TLBs, single-pass multi-config sweeps
//! * [`bpred`] — branch predictors and multi-predictor profiling
//! * [`core`] — **the paper's mechanistic model**: Eq. 1–16, CPI stacks,
//!   machine configurations, design spaces, and the out-of-order interval
//!   model used as a comparator (paper §6.1)
//! * [`workloads`] — MiBench-like and SPEC-like kernels plus compiler passes
//! * [`profile`] — one-pass profiler producing the model's inputs (Table 1)
//! * [`pipeline`] — cycle-accurate in-order pipeline simulator (the "M5")
//! * [`power`] — McPAT-like energy model and EDP evaluation
//!
//! ## Quickstart
//!
//! ```
//! use mim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Pick a workload and a machine.
//! let program = mim::workloads::mibench::sha().tiny();
//! let machine = MachineConfig::default_config();
//!
//! // 2. Profile once (architecture-independent + per-config statistics).
//! let profile = Profiler::new(&machine).profile(&program)?;
//!
//! // 3. Evaluate the mechanistic model: instantaneous CPI prediction.
//! let stack = MechanisticModel::new(&machine).predict(&profile);
//! assert!(stack.cpi() >= 1.0 / machine.width as f64);
//!
//! // 4. Compare against detailed cycle-accurate simulation.
//! let sim = PipelineSim::new(&machine).simulate(&program)?;
//! let err = (stack.cpi() - sim.cpi()).abs() / sim.cpi();
//! assert!(err < 0.15, "model within 15% of detailed simulation");
//! # Ok(())
//! # }
//! ```

pub use mim_bpred as bpred;
pub use mim_cache as cache;
pub use mim_core as core;
pub use mim_isa as isa;
pub use mim_pipeline as pipeline;
pub use mim_power as power;
pub use mim_profile as profile;
pub use mim_workloads as workloads;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use mim_core::{CpiStack, DesignSpace, MachineConfig, MechanisticModel, OooModel};
    pub use mim_isa::{Program, ProgramBuilder, Reg, Vm};
    pub use mim_pipeline::PipelineSim;
    pub use mim_power::{EnergyModel, EnergyReport};
    pub use mim_profile::Profiler;
    pub use mim_workloads::WorkloadSize;
}
