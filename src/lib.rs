//! # mim — Mechanistic In-order Model
//!
//! A full reproduction of *"A Mechanistic Performance Model for Superscalar
//! In-Order Processors"* (Breughe, Eyerman & Eeckhout, ISPASS 2012) as a
//! Rust workspace. This facade crate re-exports every subsystem:
//!
//! * [`isa`] — virtual RISC-style ISA, program builder, functional VM
//! * [`cache`] — set-associative caches, TLBs, single-pass multi-config sweeps
//! * [`bpred`] — branch predictors and multi-predictor profiling
//! * [`core`] — **the paper's mechanistic model**: Eq. 1–16, CPI stacks,
//!   machine configurations, design spaces, and the out-of-order interval
//!   model used as a comparator (paper §6.1)
//! * [`workloads`] — MiBench-like and SPEC-like kernels plus compiler passes
//! * [`trace`] — **record-once dynamic traces**: each `(workload, size)` is
//!   functionally executed exactly once ([`Trace`](mim_trace::Trace)), and
//!   the profiler, simulator, and MLP estimator replay the recording
//! * [`profile`] — one-pass profiler producing the model's inputs (Table 1)
//! * [`pipeline`] — cycle-accurate in-order pipeline simulator (the "M5")
//! * [`runner`] — **the unified evaluation API**: the object-safe
//!   [`Evaluator`](mim_runner::Evaluator) trait over model / simulator /
//!   out-of-order comparator, and the [`Experiment`](mim_runner::Experiment)
//!   builder for parallel design-space sweeps with deterministic,
//!   JSON-serializable reports
//! * [`power`] — McPAT-like energy model and EDP evaluation
//! * [`explore`] — **design-space exploration**: minimized
//!   [`Objective`](mim_explore::Objective)s over evaluation results, exact
//!   Pareto [`Frontier`](mim_explore::Frontier)s, pluggable
//!   [`SearchStrategy`](mim_explore::SearchStrategy)s (exhaustive, greedy,
//!   annealing), and the paper's hybrid model→sim workflow
//!   ([`Exploration::sim_verify`](mim_explore::Exploration::sim_verify))
//! * [`validate`] — **behavior-space differential validation**: a
//!   [`BehaviorSpace`](mim_validate::BehaviorSpace) grid over synthetic-
//!   recipe axes, [`DifferentialRun`](mim_validate::DifferentialRun)s of
//!   model vs detailed simulation over every (behaviour × design) cell,
//!   and per-term error attribution that names the model term responsible
//!   for each disagreement
//! * [`select`] — **workload characterization and representative-input
//!   selection**: microarchitecture-independent
//!   [`Signature`](mim_select::Signature)s, deterministic clustering
//!   (seeded k-medoids, agglomerative + dendrogram cut, silhouette/BIC
//!   auto-`k`), weighted
//!   [`RepresentativeSet`](mim_select::RepresentativeSet)s, and
//!   [`SubsetRun`](mim_select::SubsetRun)s that sweep a design space on
//!   the medoids only and report extrapolated metrics with a
//!   sim-verified error bound
//! * [`serve`] — **the concurrent evaluation service**: a persistent,
//!   sharded, content-addressed on-disk workload store
//!   ([`DiskStore`](mim_serve::DiskStore)) under the shared
//!   [`WorkloadStore`](mim_runner::WorkloadStore), a job
//!   [`Engine`](mim_serve::Engine) (bounded queue, worker pool, job- and
//!   cell-level dedup of overlapping sweeps), and a line-delimited JSON
//!   protocol over TCP/unix sockets served by the `mim-serve` binary —
//!   repeated and overlapping requests never re-execute anything, even
//!   across process restarts
//!
//! ## Quickstart
//!
//! Declare what to evaluate; the `Experiment` owns profiling (one pass per
//! workload, paper §2.1), evaluator wiring, parallelism, and reporting:
//!
//! ```
//! use mim::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. One experiment: a workload, the default machine, two evaluators.
//! let report = Experiment::new()
//!     .workload(mim::workloads::mibench::sha())
//!     .size(WorkloadSize::Tiny)
//!     .evaluators([EvalKind::Model, EvalKind::Sim])
//!     .run()?;
//!
//! // 2. Every cell is a unified, serializable record.
//! let model = report.get("sha", 0, "model").expect("model cell");
//! assert!(model.cpi >= 1.0 / 4.0); // at least N/W on a 4-wide machine
//! assert!(model.stack.is_some());  // analytical rows carry CPI stacks
//!
//! // 3. Model-vs-simulation comparison is a generic two-evaluator diff.
//! let diff = report.compare("model", "sim");
//! assert!(diff[0].error_percent.abs() < 15.0, "model within 15% of sim");
//! # Ok(())
//! # }
//! ```
//!
//! Design-space exploration is the same declaration plus a space and a
//! thread count — the paper's 192-point Table 2 sweep:
//!
//! ```no_run
//! use mim::prelude::*;
//! use mim::core::DesignSpace;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let report = Experiment::new()
//!     .workloads(mim::workloads::mibench::all())
//!     .design_space(DesignSpace::paper_table2())
//!     .evaluators([EvalKind::Model])
//!     .energy(true)   // §6.3: EDP per design point
//!     .threads(0)     // all cores; any thread count → identical bytes
//!     .run()?;
//! assert_eq!(report.machines.len(), 192);
//! std::fs::write("sweep.json", report.to_json())?;
//! # Ok(())
//! # }
//! ```
//!
//! The underlying subsystems remain directly usable (see
//! [`profile::Profiler`](mim_profile::Profiler),
//! [`core::MechanisticModel`](mim_core::MechanisticModel),
//! [`pipeline::PipelineSim`](mim_pipeline::PipelineSim)) — the runner is
//! composition, not a wall.

pub use mim_bpred as bpred;
pub use mim_cache as cache;
pub use mim_core as core;
pub use mim_explore as explore;
pub use mim_isa as isa;
pub use mim_pipeline as pipeline;
pub use mim_power as power;
pub use mim_profile as profile;
pub use mim_runner as runner;
pub use mim_select as select;
pub use mim_serve as serve;
pub use mim_trace as trace;
pub use mim_validate as validate;
pub use mim_workloads as workloads;

/// Convenient glob-import surface for applications.
pub mod prelude {
    pub use mim_core::{CpiStack, DesignSpace, MachineConfig, MechanisticModel, OooModel};
    pub use mim_explore::{
        Anneal, Exhaustive, Exploration, ExplorationReport, Frontier, GreedyAscent, Objective,
        SearchStrategy,
    };
    pub use mim_isa::{Program, ProgramBuilder, Reg, Vm};
    pub use mim_pipeline::PipelineSim;
    pub use mim_power::{EnergyModel, EnergyReport};
    pub use mim_profile::Profiler;
    pub use mim_runner::{
        CellMemo, EvalKind, EvalResult, Evaluator, Experiment, ExperimentReport, ModelEvaluator,
        OooEvaluator, SimEvaluator, StoreStats, WorkloadSpec, WorkloadStore,
    };
    pub use mim_select::{
        Distance, RepresentativeSet, Selection, Signature, SubsetReport, SubsetRun,
    };
    pub use mim_serve::{Client, Engine, JobSpec, Server};
    pub use mim_trace::{LiveVm, Sampling, Trace, TraceSource};
    pub use mim_validate::{BehaviorSpace, DifferentialRun, ErrorTerm, ValidationReport};
    pub use mim_workloads::WorkloadSize;
}
